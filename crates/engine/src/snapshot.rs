//! Epoch-versioned copy-on-write snapshots of a maintained database.
//!
//! The serving problem: many concurrent readers, few writers, and the
//! paper's closure guarantee (§1.1) making each read cheap — so
//! throughput must be bounded by *pinning* a consistent state, never by
//! copying it. A [`SnapshotStore`] owns the single writer path (a
//! [`MaterializedView`] maintaining the IDB incrementally) and publishes
//! an immutable [`Snapshot`] after every commit:
//!
//! * **Pinning is O(1).** A published snapshot is an
//!   `Arc<Database<T>>`; [`SnapshotStore::pin`] clones the `Arc` under a
//!   short lock. No tuple, index or bucket is copied.
//! * **Commits share unchanged segments.** `GenRelation` tuple storage
//!   is itself `Arc`-shared copy-on-write (see
//!   [`GenRelation::shares_store`]), so the database published at epoch
//!   `n+1` shares every unchanged relation's segment with epoch `n`;
//!   only the relations the commit actually touched carry new storage,
//!   and those were rebuilt by the *incremental* maintenance path, not
//!   by a fixpoint from scratch.
//! * **Epochs are content versions.** A snapshot's epoch id is the
//!   maximum [`GenRelation::version`] across its relations. Versions
//!   come from a process-global monotone counter and every effective
//!   commit bumps at least one relation, so epochs strictly increase
//!   across effective commits — and a no-op commit (duplicate insert)
//!   keeps the epoch, which is exactly right: readers cannot
//!   distinguish the states. Derived caches (summary tries, join-plan
//!   atom data) keyed by relation version therefore remain valid across
//!   epochs for every untouched relation.
//!
//! Snapshot isolation holds by construction: a published database is
//! never mutated (the writer's next commit copies-on-write into fresh
//! segments), so a reader's pinned epoch is byte-identical to the
//! serial state after the commit that published it — the concurrency
//! test in `tests/snapshot_isolation.rs` races 8 readers against a
//! committing writer across 100 epochs to pin this.
//!
//! Relations that appear in the initial database but in no rule of the
//! program are *pass-through*: the store keeps them directly (dedup-only
//! compression, so retraction is exact) and updates to them publish a
//! new epoch without touching the view.

use crate::datalog::{FixpointOptions, Program};
use crate::trace::UpdateStats;
use crate::MaterializedView;
use cql_core::error::{CqlError, Result};
use cql_core::policy::{EnginePolicy, SubsumptionMode};
use cql_core::relation::{Database, GenRelation, GenTuple};
use cql_core::theory::Theory;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Pinned-reader accounting shared by a store and its snapshots:
/// epoch → number of live pins.
#[derive(Default)]
struct PinTable {
    pins: Mutex<BTreeMap<u64, usize>>,
}

/// Decrements the pin count of one epoch on drop. Cloned snapshots
/// share one guard, so a pin is counted once per [`SnapshotStore::pin`].
struct PinGuard {
    epoch: u64,
    table: Arc<PinTable>,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut pins = self.table.pins.lock().expect("pin table poisoned");
        if let Some(n) = pins.get_mut(&self.epoch) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&self.epoch);
            }
        }
    }
}

/// An immutable view of the database at one published epoch.
///
/// Cheap to clone (two `Arc` bumps); holds its epoch pinned in the
/// store's gauge accounting until every clone is dropped. The data is
/// genuinely immutable — the writer's next commit copies-on-write into
/// fresh segments — so any evaluation against the snapshot observes one
/// consistent state regardless of concurrent commits.
pub struct Snapshot<T: Theory> {
    epoch: u64,
    db: Arc<Database<T>>,
    _pin: Arc<PinGuard>,
}

impl<T: Theory> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Snapshot { epoch: self.epoch, db: Arc::clone(&self.db), _pin: Arc::clone(&self._pin) }
    }
}

impl<T: Theory> Snapshot<T> {
    /// The epoch id: the maximum relation content version in this
    /// snapshot. Strictly increases across effective commits.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The full database (EDB and maintained IDB) at this epoch.
    #[must_use]
    pub fn db(&self) -> &Database<T> {
        &self.db
    }

    /// One relation of the snapshot.
    ///
    /// # Errors
    /// `CqlError::UnknownRelation` if absent.
    pub fn relation(&self, name: &str) -> Result<&GenRelation<T>> {
        self.db.require(name)
    }
}

impl<T: Theory> std::fmt::Debug for Snapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Snapshot(epoch={}, relations={})", self.epoch, self.db.len())
    }
}

/// The epoch-versioned store: one writer path (the incremental
/// [`MaterializedView`] plus pass-through relations) and an atomically
/// published current [`Snapshot`]. See the module docs.
pub struct SnapshotStore<T: Theory> {
    /// Writer state: commits serialize on this lock. Readers never take
    /// it.
    writer: Mutex<Writer<T>>,
    /// The published snapshot: a short lock around an `Arc` clone, so
    /// `pin` is O(1) and never blocks behind a commit's solver work
    /// (commits only take this lock for the final pointer swap).
    published: Mutex<Published<T>>,
    pins: Arc<PinTable>,
    commits: AtomicU64,
}

struct Writer<T: Theory> {
    view: MaterializedView<T>,
    /// Relations served verbatim because no rule mentions them.
    extra: BTreeMap<String, GenRelation<T>>,
}

struct Published<T: Theory> {
    epoch: u64,
    db: Arc<Database<T>>,
}

impl<T: Theory> SnapshotStore<T> {
    /// Materialize `program` over `edb` and publish the initial epoch.
    /// Relations of `edb` not mentioned by any rule are kept as
    /// pass-through relations (rebuilt dedup-only for exact retraction).
    ///
    /// # Errors
    /// As [`MaterializedView::new`].
    pub fn new(program: Program<T>, edb: &Database<T>, opts: FixpointOptions) -> Result<Self> {
        let known = program.arities()?;
        let passthrough_policy =
            EnginePolicy { subsumption: SubsumptionMode::DedupOnly, ..opts.policy };
        let mut extra = BTreeMap::new();
        let mut known_db = Database::new();
        for (name, rel) in edb.iter() {
            if known.contains_key(name) {
                known_db.insert(name, rel.clone());
            } else {
                let mut exact = GenRelation::with_policy(rel.arity(), passthrough_policy);
                for t in rel.tuples() {
                    exact.insert(t.clone());
                }
                extra.insert(name.to_string(), exact);
            }
        }
        let view = MaterializedView::new(program, &known_db, opts)?;
        let mut writer = Writer { view, extra };
        let (epoch, db) = assemble(&mut writer);
        Ok(SnapshotStore {
            writer: Mutex::new(writer),
            published: Mutex::new(Published { epoch, db }),
            pins: Arc::new(PinTable::default()),
            commits: AtomicU64::new(0),
        })
    }

    /// Pin the current epoch: O(1), returns an immutable [`Snapshot`].
    pub fn pin(&self) -> Snapshot<T> {
        let (epoch, db) = {
            let published = self.published.lock().expect("published snapshot poisoned");
            (published.epoch, Arc::clone(&published.db))
        };
        *self.pins.pins.lock().expect("pin table poisoned").entry(epoch).or_insert(0) += 1;
        Snapshot { epoch, db, _pin: Arc::new(PinGuard { epoch, table: Arc::clone(&self.pins) }) }
    }

    /// The current epoch id (without pinning).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.published.lock().expect("published snapshot poisoned").epoch
    }

    /// Assert one EDB tuple and publish the resulting epoch. Derived
    /// consequences are maintained incrementally (delta cone only), and
    /// unchanged relations keep their shared storage in the new epoch.
    ///
    /// # Errors
    /// As [`MaterializedView::insert`] for program relations; unknown
    /// relations are rejected.
    pub fn insert(&self, relation: &str, tuple: GenTuple<T>) -> Result<UpdateStats> {
        let mut writer = self.writer.lock().expect("snapshot writer poisoned");
        let stats = if let Some(rel) = writer.extra.get_mut(relation) {
            let started = std::time::Instant::now();
            rel.insert(tuple);
            passthrough_stats("insert", relation, started)
        } else {
            writer.view.insert(relation, tuple)?
        };
        self.publish(&mut writer);
        Ok(stats)
    }

    /// Retract one previously asserted EDB tuple and publish the
    /// resulting epoch.
    ///
    /// # Errors
    /// As [`MaterializedView::retract`] for program relations; unknown
    /// relations or absent tuples are rejected.
    pub fn retract(&self, relation: &str, tuple: &GenTuple<T>) -> Result<UpdateStats> {
        let mut writer = self.writer.lock().expect("snapshot writer poisoned");
        let stats = if let Some(rel) = writer.extra.get_mut(relation) {
            if !rel.remove(tuple) {
                return Err(CqlError::Malformed(format!(
                    "retract of a tuple not currently asserted in `{relation}`"
                )));
            }
            let started = std::time::Instant::now();
            passthrough_stats("retract", relation, started)
        } else {
            writer.view.retract(relation, tuple)?
        };
        self.publish(&mut writer);
        Ok(stats)
    }

    /// Number of commits applied since construction.
    #[must_use]
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Occupancy gauges, as `(name, value)` rows: the current epoch,
    /// commit count, number of distinct epochs still pinned by live
    /// readers, total pinned readers, and one
    /// `snapshot_pins_epoch_<id>` row per pinned epoch. Feed them to a
    /// [`crate::trace::TelemetryRegistry`] via `set_gauge` for
    /// Prometheus/JSON exposition.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, u64)> {
        let pins = self.pins.pins.lock().expect("pin table poisoned");
        let mut rows = vec![
            ("snapshot_epoch".to_string(), self.epoch()),
            ("snapshot_commits".to_string(), self.commits()),
            ("snapshot_live_epochs".to_string(), pins.len() as u64),
            ("snapshot_pinned_readers".to_string(), pins.values().map(|&n| n as u64).sum()),
        ];
        for (epoch, &count) in pins.iter() {
            rows.push((format!("snapshot_pins_epoch_{epoch}"), count as u64));
        }
        rows
    }

    /// Per-update EXPLAIN rows accumulated by the writer path.
    #[must_use]
    pub fn take_updates(&self) -> Vec<UpdateStats> {
        self.writer.lock().expect("snapshot writer poisoned").view.take_updates()
    }

    /// Assemble and publish the writer's current state as a snapshot.
    fn publish(&self, writer: &mut Writer<T>) {
        let (epoch, db) = assemble(writer);
        self.commits.fetch_add(1, Ordering::Relaxed);
        let mut published = self.published.lock().expect("published snapshot poisoned");
        published.epoch = epoch;
        published.db = db;
    }
}

/// Compose the full database (EDB stores + maintained IDB antichain +
/// pass-through relations) and its epoch id. Every relation clone here
/// is an `Arc` bump; unchanged relations share storage with the
/// previously published epoch.
fn assemble<T: Theory>(writer: &mut Writer<T>) -> (u64, Arc<Database<T>>) {
    let mut db = writer.view.current().clone();
    for (name, rel) in writer.view.edb() {
        db.insert(name, rel.clone());
    }
    for (name, rel) in &writer.extra {
        db.insert(name.clone(), rel.clone());
    }
    let epoch = db.iter().map(|(_, rel)| rel.version()).max().unwrap_or(0);
    (epoch, Arc::new(db))
}

fn passthrough_stats(op: &str, relation: &str, started: std::time::Instant) -> UpdateStats {
    UpdateStats {
        op: op.to_string(),
        relation: relation.to_string(),
        delta_rounds: 0,
        rederivations: 0,
        support_adjust: 0,
        qe_calls: 0,
        entailment_checks: 0,
        wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datalog::{Atom, Literal, Rule};
    use cql_dense::{Dense, DenseConstraint};

    fn tc_program() -> Program<Dense> {
        Program::new(vec![
            Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
            Rule::new(
                Atom::new("T", vec![0, 1]),
                vec![
                    Literal::Pos(Atom::new("T", vec![0, 2])),
                    Literal::Pos(Atom::new("E", vec![2, 1])),
                ],
            ),
        ])
    }

    fn edge(a: i64, b: i64) -> GenTuple<Dense> {
        GenTuple::new(vec![DenseConstraint::eq_const(0, a), DenseConstraint::eq_const(1, b)])
            .unwrap()
    }

    fn store() -> SnapshotStore<Dense> {
        let mut db = Database::new();
        let mut e = GenRelation::empty(2);
        e.insert(edge(0, 1));
        e.insert(edge(1, 2));
        db.insert("E", e);
        let mut p = GenRelation::empty(1);
        p.insert(GenTuple::new(vec![DenseConstraint::eq_const(0, 7)]).unwrap());
        db.insert("Passthrough", p);
        SnapshotStore::new(tc_program(), &db, FixpointOptions::default()).unwrap()
    }

    #[test]
    fn pinned_snapshot_is_immutable_across_commits() {
        let store = store();
        let before = store.pin();
        assert_eq!(before.relation("T").unwrap().len(), 3);
        store.insert("E", edge(2, 3)).unwrap();
        let after = store.pin();
        // The old pin still sees the old closure; the new pin the new one.
        assert_eq!(before.relation("T").unwrap().len(), 3);
        assert_eq!(after.relation("T").unwrap().len(), 6);
        assert!(after.epoch() > before.epoch(), "effective commits advance the epoch");
    }

    #[test]
    fn unchanged_relations_share_storage_across_epochs() {
        let store = store();
        let before = store.pin();
        store.insert("E", edge(2, 3)).unwrap();
        let after = store.pin();
        // The commit never touched the pass-through relation: both
        // epochs share its COW segment. E and T changed: new segments.
        assert!(before
            .relation("Passthrough")
            .unwrap()
            .shares_store(after.relation("Passthrough").unwrap()));
        assert!(!before.relation("E").unwrap().shares_store(after.relation("E").unwrap()));
        assert_eq!(
            before.relation("Passthrough").unwrap().version(),
            after.relation("Passthrough").unwrap().version(),
        );
    }

    #[test]
    fn passthrough_relations_accept_updates_and_bump_the_epoch() {
        let store = store();
        let e0 = store.epoch();
        let t = GenTuple::new(vec![DenseConstraint::eq_const(0, 9)]).unwrap();
        store.insert("Passthrough", t.clone()).unwrap();
        assert!(store.epoch() > e0);
        assert_eq!(store.pin().relation("Passthrough").unwrap().len(), 2);
        store.retract("Passthrough", &t).unwrap();
        assert_eq!(store.pin().relation("Passthrough").unwrap().len(), 1);
        assert!(store.retract("Passthrough", &t).is_err(), "retracting absent tuple fails");
    }

    #[test]
    fn pin_gauges_track_live_epochs_and_readers() {
        let store = store();
        let a = store.pin();
        let b = store.pin();
        store.insert("E", edge(2, 3)).unwrap();
        let c = store.pin();
        let rows: BTreeMap<String, u64> = store.gauges().into_iter().collect();
        assert_eq!(rows["snapshot_live_epochs"], 2);
        assert_eq!(rows["snapshot_pinned_readers"], 3);
        assert_eq!(rows[&format!("snapshot_pins_epoch_{}", a.epoch())], 2);
        assert_eq!(rows[&format!("snapshot_pins_epoch_{}", c.epoch())], 1);
        drop(a);
        drop(b);
        let clone = c.clone();
        drop(c);
        let rows: BTreeMap<String, u64> = store.gauges().into_iter().collect();
        // Clones share one pin; the pinned epoch stays live until the
        // last clone drops.
        assert_eq!(rows["snapshot_live_epochs"], 1);
        assert_eq!(rows["snapshot_pinned_readers"], 1);
        drop(clone);
        let rows: BTreeMap<String, u64> = store.gauges().into_iter().collect();
        assert_eq!(rows["snapshot_live_epochs"], 0);
    }

    #[test]
    fn noop_commit_keeps_the_epoch() {
        let store = store();
        let e0 = store.epoch();
        store.insert("E", edge(0, 1)).unwrap();
        assert_eq!(store.epoch(), e0, "a duplicate insert changes nothing observable");
        assert_eq!(store.commits(), 1);
    }
}
