//! The thread-per-core multi-tenant front door: a hand-rolled worker
//! pool with a bounded admission queue, per-tenant telemetry scopes and
//! SLO-watchdog wiring. No external dependencies — the queue is a
//! `Mutex<VecDeque>` + `Condvar`, workers are plain OS threads (one per
//! core by default), and responses travel through one-shot tickets.
//!
//! Design points:
//!
//! * **Bounded admission.** [`QueryServer::submit`] never blocks: a
//!   full queue sheds the request ([`Admission::Overloaded`]) instead
//!   of queueing unbounded work — the client retries or backs off, and
//!   p99 latency stays bounded by queue depth × service time.
//! * **Per-tenant accounting.** Each query runs with the tenant's
//!   long-lived [`TelemetryRegistry`] scope installed, wrapped in a
//!   per-query [`MetricsScope`]: counters and histograms recorded
//!   anywhere in the engine fold into the tenant's totals exactly
//!   (workers and the engine executor install the issuing scope), and
//!   the scope's drop runs the armed SLO-watchdog check, freezing the
//!   flight recorder on breach — the PR 9 wiring, now per query.
//! * **Thread-per-core.** Workers default to
//!   [`std::thread::available_parallelism`]. Each worker drains the
//!   shared queue; there is no per-connection thread, so 10k+ simulated
//!   clients multiplex onto a fixed core count (see `repro e21`).
//!
//! The server is generic over request/response types: the serving
//! closure captures whatever runtime state it needs (typically an
//! `Arc<Runtime<T>>` — pin a snapshot, evaluate, return). Keeping the
//! server payload-agnostic means admission control, telemetry and
//! shutdown are testable without a constraint theory in sight.

use crate::trace::{MetricsScope, TelemetryRegistry};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Worker-pool and admission-queue sizing.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads (0 means one per available core).
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { workers: 0, queue_capacity: 1024 }
    }
}

impl ServerConfig {
    fn resolved_workers(self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

/// The admission decision for one submitted request.
pub enum Admission<Resp> {
    /// Queued; redeem the ticket with [`Ticket::wait`].
    Accepted(Ticket<Resp>),
    /// The queue was full (or the server is shutting down); the request
    /// was not queued. Callers back off and retry.
    Overloaded,
}

impl<Resp> Admission<Resp> {
    /// The ticket, or `None` if the request was shed.
    pub fn ticket(self) -> Option<Ticket<Resp>> {
        match self {
            Admission::Accepted(t) => Some(t),
            Admission::Overloaded => None,
        }
    }
}

/// A one-shot response slot: the worker fills it, the submitting client
/// blocks on [`Ticket::wait`].
pub struct Ticket<Resp> {
    cell: Arc<(Mutex<Option<Resp>>, Condvar)>,
}

impl<Resp> Ticket<Resp> {
    /// Block until the response arrives.
    ///
    /// # Panics
    /// Panics if the serving thread panicked while handling the request
    /// (the slot's mutex is poisoned).
    #[must_use]
    pub fn wait(self) -> Resp {
        let (slot, ready) = &*self.cell;
        let mut guard = slot.lock().expect("response slot poisoned");
        loop {
            if let Some(resp) = guard.take() {
                return resp;
            }
            guard = ready.wait(guard).expect("response slot poisoned");
        }
    }
}

struct Job<Req, Resp> {
    tenant: String,
    req: Req,
    ticket: Arc<(Mutex<Option<Resp>>, Condvar)>,
}

struct QueueState<Req, Resp> {
    jobs: VecDeque<Job<Req, Resp>>,
    shutdown: bool,
}

type Handler<Req, Resp> = Box<dyn Fn(&str, Req) -> Resp + Send + Sync>;

struct Shared<Req, Resp> {
    queue: Mutex<QueueState<Req, Resp>>,
    available: Condvar,
    capacity: usize,
    handler: Handler<Req, Resp>,
    registry: Arc<TelemetryRegistry>,
    /// Per-tenant in-flight query counts (mirrored into the registry's
    /// per-tenant `active_queries` gauge on every transition).
    active: Mutex<BTreeMap<String, u64>>,
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
}

/// The multi-tenant query server. See the module docs.
pub struct QueryServer<Req: Send + 'static, Resp: Send + 'static> {
    shared: Arc<Shared<Req, Resp>>,
    workers: Vec<JoinHandle<()>>,
}

impl<Req: Send + 'static, Resp: Send + 'static> QueryServer<Req, Resp> {
    /// Start the worker pool. Every query runs `handler(tenant, req)`
    /// under the tenant's registered telemetry scope.
    pub fn start(
        config: ServerConfig,
        registry: Arc<TelemetryRegistry>,
        handler: impl Fn(&str, Req) -> Resp + Send + Sync + 'static,
    ) -> QueryServer<Req, Resp> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            handler: Box::new(handler),
            registry,
            active: Mutex::new(BTreeMap::new()),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let workers = (0..config.resolved_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cql-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn server worker")
            })
            .collect();
        QueryServer { shared, workers }
    }

    /// Submit one request for `tenant`. Never blocks: a full queue (or
    /// a server mid-shutdown) sheds the request.
    pub fn submit(&self, tenant: &str, req: Req) -> Admission<Resp> {
        let cell = {
            let mut queue = self.shared.queue.lock().expect("server queue poisoned");
            if queue.shutdown || queue.jobs.len() >= self.shared.capacity {
                drop(queue);
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                return Admission::Overloaded;
            }
            let cell = Arc::new((Mutex::new(None), Condvar::new()));
            queue.jobs.push_back(Job {
                tenant: tenant.to_string(),
                req,
                ticket: Arc::clone(&cell),
            });
            cell
        };
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        self.shared.available.notify_one();
        Admission::Accepted(Ticket { cell })
    }

    /// The worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Admission and occupancy gauges, as `(name, value)` rows: queue
    /// depth and capacity, worker count, admitted/shed/completed totals
    /// and the total in-flight query count. Per-tenant in-flight counts
    /// live in the registry (gauge `active_queries` on each tenant's
    /// scope).
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, u64)> {
        let depth = self.shared.queue.lock().expect("server queue poisoned").jobs.len();
        let active: u64 = self.shared.active.lock().expect("active poisoned").values().sum();
        vec![
            ("server_queue_depth".to_string(), depth as u64),
            ("server_queue_capacity".to_string(), self.shared.capacity as u64),
            ("server_workers".to_string(), self.workers.len() as u64),
            ("server_admitted".to_string(), self.shared.admitted.load(Ordering::Relaxed)),
            ("server_shed".to_string(), self.shared.shed.load(Ordering::Relaxed)),
            ("server_completed".to_string(), self.shared.completed.load(Ordering::Relaxed)),
            ("server_active_queries".to_string(), active),
        ]
    }

    /// Stop admitting, drain queued work, and join every worker.
    pub fn shutdown(mut self) {
        self.signal_and_join();
    }

    fn signal_and_join(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("server queue poisoned");
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("server worker panicked");
        }
    }
}

impl<Req: Send + 'static, Resp: Send + 'static> Drop for QueryServer<Req, Resp> {
    fn drop(&mut self) {
        self.signal_and_join();
    }
}

fn worker_loop<Req: Send, Resp: Send>(shared: &Shared<Req, Resp>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("server queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).expect("server queue poisoned");
            }
        };
        set_active(shared, &job.tenant, 1);
        let handle = shared.registry.register(&job.tenant);
        let resp = {
            let _tenant = handle.install();
            // Per-query scope: folds into the tenant scope on drop and
            // runs the armed SLO-watchdog check (recorder freeze on
            // breach) — exactly the instrumentation a standalone
            // evaluation gets.
            let _query = MetricsScope::enter("server.query");
            (shared.handler)(&job.tenant, job.req)
        };
        let (slot, ready) = &*job.ticket;
        *slot.lock().expect("response slot poisoned") = Some(resp);
        ready.notify_all();
        set_active(shared, &job.tenant, -1);
        shared.completed.fetch_add(1, Ordering::Relaxed);
    }
}

fn set_active<Req, Resp>(shared: &Shared<Req, Resp>, tenant: &str, delta: i64) {
    let mut active = shared.active.lock().expect("active poisoned");
    let n = active.entry(tenant.to_string()).or_insert(0);
    *n = n.checked_add_signed(delta).expect("active query count underflow");
    shared.registry.set_gauge(tenant, "active_queries", *n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server(config: ServerConfig) -> (QueryServer<u64, u64>, Arc<TelemetryRegistry>) {
        let registry = Arc::new(TelemetryRegistry::new());
        let server = QueryServer::start(config, Arc::clone(&registry), |_tenant, n: u64| n * 2);
        (server, registry)
    }

    #[test]
    fn round_trips_requests_across_tenants() {
        let (server, registry) = echo_server(ServerConfig { workers: 4, queue_capacity: 64 });
        let tickets: Vec<_> = (0..32u64)
            .map(|i| {
                let tenant = if i % 2 == 0 { "tenant-a" } else { "tenant-b" };
                server.submit(tenant, i).ticket().expect("under capacity")
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), (i as u64) * 2);
        }
        // Both tenants got scopes; in-flight gauges settled back to 0.
        assert!(registry.names().contains(&"tenant-a".to_string()));
        let reading = registry.snapshot_scope("tenant-b").unwrap();
        assert_eq!(reading.gauges["active_queries"], 0);
        let rows: BTreeMap<String, u64> = server.gauges().into_iter().collect();
        assert_eq!(rows["server_admitted"], 32);
        assert_eq!(rows["server_completed"], 32);
        assert_eq!(rows["server_shed"], 0);
        assert_eq!(rows["server_active_queries"], 0);
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let registry = Arc::new(TelemetryRegistry::new());
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate_w = Arc::clone(&gate);
        // One worker, blocked until released: the queue fills up.
        let server = QueryServer::start(
            ServerConfig { workers: 1, queue_capacity: 2 },
            registry,
            move |_t, n: u64| {
                let (open, cv) = &*gate_w;
                let mut guard = open.lock().unwrap();
                while !*guard {
                    guard = cv.wait(guard).unwrap();
                }
                n
            },
        );
        // First submission is picked up by the (blocked) worker; the
        // next two fill the queue; the one after that is shed.
        let mut tickets = Vec::new();
        let mut shed = 0;
        for i in 0..8u64 {
            match server.submit("t", i) {
                Admission::Accepted(t) => tickets.push(t),
                Admission::Overloaded => shed += 1,
            }
            if i == 0 {
                // Give the worker a moment to dequeue the first job so
                // capacity accounting below is deterministic enough.
                while server.gauges().iter().any(|(n, v)| n == "server_queue_depth" && *v > 0) {
                    std::thread::yield_now();
                }
            }
        }
        assert!(shed >= 5, "expected at least 5 shed submissions, got {shed}");
        let (open, cv) = &*gate;
        *open.lock().unwrap() = true;
        cv.notify_all();
        for t in tickets {
            let _ = t.wait();
        }
        let rows: BTreeMap<String, u64> = server.gauges().into_iter().collect();
        assert_eq!(rows["server_shed"], shed);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let (server, _registry) = echo_server(ServerConfig { workers: 2, queue_capacity: 128 });
        let tickets: Vec<_> = (0..64u64).filter_map(|i| server.submit("t", i).ticket()).collect();
        server.shutdown();
        // Every admitted request was answered before the workers exited.
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), (i as u64) * 2);
        }
    }

    #[test]
    fn per_query_scopes_fold_into_tenant_totals() {
        use crate::trace::{count, Counter};
        let registry = Arc::new(TelemetryRegistry::new());
        let server = QueryServer::start(
            ServerConfig { workers: 2, queue_capacity: 64 },
            Arc::clone(&registry),
            |_t, n: u64| {
                count(Counter::QeCalls, n);
                n
            },
        );
        let tickets: Vec<_> =
            (1..=10u64).filter_map(|i| server.submit("acct", i).ticket()).collect();
        for t in tickets {
            let _ = t.wait();
        }
        server.shutdown();
        let reading = registry.snapshot_scope("acct").unwrap();
        assert_eq!(reading.metrics.get(Counter::QeCalls), 55, "1+2+…+10 across queries");
    }
}
