//! Symbolic bottom-up evaluation of relational calculus queries.
//!
//! Evaluation proceeds by structural induction on the formula (the
//! "generalized relational algebra" view of §2.1 of the paper): each
//! subformula evaluates to a generalized relation (a DNF of constraints)
//! over the query's variable space; `∃` applies quantifier elimination to
//! every disjunct, `∧`/`∨` are intersection/union, and `¬` is the DNF
//! complement. The output is projected onto the query's free variables —
//! a closed-form generalized relation.
//!
//! The induction is engine-aware: conjunction products and quantifier
//! eliminations run on the [`Engine`]'s executor, and every derived
//! conjunction is canonicalized through its interner. [`evaluate`] and
//! [`decide`] use a serial engine; [`evaluate_with`] / [`decide_with`]
//! accept a caller-owned one.

use crate::algebra::{eliminate_with, intersect_with, union_with};
use crate::Engine;
use cql_core::error::{CqlError, Result};
use cql_core::formula::{CalculusQuery, Formula};
use cql_core::relation::{Database, GenRelation};
use cql_core::theory::Theory;
use cql_trace::op_timed;

/// Evaluate a relational calculus query into a generalized relation of
/// arity `query.free.len()` (column `i` is free variable `query.free[i]`).
///
/// # Errors
/// Validation errors, or `CqlError::Unsupported` when the theory cannot
/// eliminate a quantifier that the formula requires.
pub fn evaluate<T: Theory>(query: &CalculusQuery<T>, db: &Database<T>) -> Result<GenRelation<T>> {
    evaluate_with(&Engine::serial(), query, db)
}

/// [`evaluate`] on an engine context.
///
/// # Errors
/// As [`evaluate`].
pub fn evaluate_with<T: Theory>(
    engine: &Engine<T>,
    query: &CalculusQuery<T>,
    db: &Database<T>,
) -> Result<GenRelation<T>> {
    let mut query_span = cql_trace::span("calculus.query", "query");
    query_span.arg("free_vars", query.free.len() as u64);
    query.formula.validate(db)?;
    let scope = query
        .formula
        .all_vars()
        .last()
        .map_or(query.free.len(), |&v| v + 1)
        .max(query.free.iter().map(|&v| v + 1).max().unwrap_or(0));
    let rel = eval_rec(engine, &query.formula, db, scope)?;
    op_timed("calculus.project_free", || project_to_free(engine, &rel, &query.free))
}

/// Decide a sentence (a query with no free variables).
///
/// Boolean connectives at closed levels are decided directly, which keeps
/// outer negations (the common `¬∃…` shape of the convex-hull query,
/// Ex 2.1) away from the expensive DNF complement.
///
/// # Errors
/// Same as [`evaluate`].
pub fn decide<T: Theory>(formula: &Formula<T>, db: &Database<T>) -> Result<bool> {
    decide_with(&Engine::serial(), formula, db)
}

/// [`decide`] on an engine context.
///
/// # Errors
/// Same as [`evaluate`].
pub fn decide_with<T: Theory>(
    engine: &Engine<T>,
    formula: &Formula<T>,
    db: &Database<T>,
) -> Result<bool> {
    if let Some(v) = formula.free_vars().first() {
        return Err(CqlError::Malformed(format!(
            "decide() requires a sentence, but variable {v} is free"
        )));
    }
    formula.validate(db)?;
    decide_rec(engine, formula, db)
}

fn decide_rec<T: Theory>(
    engine: &Engine<T>,
    formula: &Formula<T>,
    db: &Database<T>,
) -> Result<bool> {
    match formula {
        Formula::And(a, b) => Ok(decide_rec(engine, a, db)? && decide_rec(engine, b, db)?),
        Formula::Or(a, b) => Ok(decide_rec(engine, a, db)? || decide_rec(engine, b, db)?),
        Formula::Not(a) => Ok(!decide_rec(engine, a, db)?),
        Formula::Atom { relation, .. } => {
            // Arity was validated; a closed atom has arity 0.
            Ok(!db.require(relation)?.is_empty())
        }
        Formula::Constraint(c) => Ok(T::is_satisfiable(std::slice::from_ref(c))),
        Formula::Exists(..) | Formula::Forall(..) => {
            let scope = formula.all_vars().last().map_or(0, |&v| v + 1);
            let rel = eval_rec(engine, formula, db, scope)?;
            Ok(!rel.is_empty())
        }
    }
}

fn eval_rec<T: Theory>(
    engine: &Engine<T>,
    formula: &Formula<T>,
    db: &Database<T>,
    scope: usize,
) -> Result<GenRelation<T>> {
    // One operator label per node kind; timings are inclusive of subtrees.
    let op = match formula {
        Formula::Atom { .. } => "calculus.atom",
        Formula::Constraint(_) => "calculus.constraint",
        Formula::And(..) => "calculus.and",
        Formula::Or(..) => "calculus.or",
        Formula::Not(_) => "calculus.not",
        Formula::Exists(..) => "calculus.exists",
        Formula::Forall(..) => "calculus.forall",
    };
    op_timed(op, || match formula {
        Formula::Atom { relation, vars } => {
            let rel = db.require(relation)?;
            Ok(rel.rename_into(scope, &|j| vars[j]))
        }
        Formula::Constraint(c) => {
            let mut out = engine.relation(scope);
            if let Some(t) = engine.intern(vec![c.clone()]) {
                out.insert(t);
            }
            Ok(out)
        }
        Formula::And(a, b) => {
            let left = eval_rec(engine, a, db, scope)?;
            let right = eval_rec(engine, b, db, scope)?;
            Ok(intersect_with(engine, &left, &right))
        }
        Formula::Or(a, b) => {
            let left = eval_rec(engine, a, db, scope)?;
            let right = eval_rec(engine, b, db, scope)?;
            Ok(union_with(engine, &left, &right))
        }
        Formula::Not(a) => Ok(eval_rec(engine, a, db, scope)?.complement()),
        Formula::Exists(v, a) => eliminate_with(engine, &eval_rec(engine, a, db, scope)?, *v),
        Formula::Forall(v, a) => {
            // ∀v.ψ ≡ ¬∃v.¬ψ
            let inner = eval_rec(engine, a, db, scope)?.complement();
            Ok(eliminate_with(engine, &inner, *v)?.complement())
        }
    })
}

/// Rename the free variables of a fully-evaluated relation to output
/// columns `0..m`, verifying no other variable survived elimination.
fn project_to_free<T: Theory>(
    engine: &Engine<T>,
    rel: &GenRelation<T>,
    free: &[usize],
) -> Result<GenRelation<T>> {
    let mut position =
        vec![usize::MAX; rel.arity().max(free.iter().map(|&v| v + 1).max().unwrap_or(0))];
    for (i, &v) in free.iter().enumerate() {
        position[v] = i;
    }
    for t in rel.tuples() {
        for c in t.constraints() {
            for v in T::vars(c) {
                if position.get(v).copied().unwrap_or(usize::MAX) == usize::MAX {
                    return Err(CqlError::Malformed(format!(
                        "internal: variable {v} survived quantifier elimination"
                    )));
                }
            }
        }
    }
    let mut out = engine.relation(free.len());
    for t in rel.tuples() {
        if let Some(t2) = engine.intern(t.rename(&|v| position[v])) {
            out.insert(t2);
        }
    }
    Ok(out)
}
