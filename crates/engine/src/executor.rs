//! The unified parallel executor.
//!
//! Every evaluator in this crate parallelizes the same way: a batch of
//! independent per-tuple jobs (rule firings, conjunction products,
//! quantifier eliminations) mapped over a fixed thread count with
//! [`std::thread::scope`]. The seed grew one private copy of that loop
//! inside the Herbrand engine (`fire_parallel`); [`Executor`] is that
//! loop promoted to a subsystem, shared by the symbolic Datalog engines,
//! the calculus evaluator, the relational algebra, and the Herbrand
//! machinery.
//!
//! An executor with `threads == 1` never spawns: callers can thread one
//! through unconditionally and pay nothing in the sequential case.
//!
//! Observability: the executor is the one place evaluation crosses a
//! thread boundary, so it is the one place scoped metrics could leak.
//! Before spawning, [`Executor::map`] captures the calling thread's
//! innermost [`cql_trace::MetricsScope`] handle and installs it on every
//! worker for the duration of the batch — counters incremented by
//! workers land in the same scope as serial work, making per-query
//! totals exact at any thread count.

use cql_trace::{current_handle, span};

/// Environment variable read by [`Executor::from_env`]; the CI matrix
/// runs the engine property tests at 1 and 4 threads through it.
pub const THREADS_ENV: &str = "CQL_ENGINE_THREADS";

/// A fixed-width scoped-thread map over independent jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    /// The serial executor (one thread, zero overhead).
    fn default() -> Executor {
        Executor::serial()
    }
}

impl Executor {
    /// An executor that runs every batch on the calling thread.
    #[must_use]
    pub fn serial() -> Executor {
        Executor { threads: 1 }
    }

    /// An executor over `threads` OS threads (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Executor {
        Executor { threads: threads.max(1) }
    }

    /// Thread count from [`THREADS_ENV`], defaulting to 1 (serial) when
    /// unset or unparsable — evaluation never spawns threads unless asked.
    #[must_use]
    pub fn from_env() -> Executor {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Executor::new(threads)
    }

    /// The configured thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `items`, preserving order. With more than one thread
    /// the items are split into contiguous chunks, one scoped thread per
    /// chunk; with one thread (or a tiny batch) it is a plain loop.
    pub fn map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        // Spawning costs tens of microseconds per thread; a batch has to
        // be wide enough to amortize that or the map runs inline.
        const MIN_ITEMS_PER_THREAD: usize = 8;
        if self.threads <= 1 || items.len() < 2 * MIN_ITEMS_PER_THREAD {
            return items.into_iter().map(f).collect();
        }
        let workers = self.threads.min(items.len() / MIN_ITEMS_PER_THREAD).max(1);
        let chunk_size = items.len().div_ceil(workers);
        let mut chunks: Vec<Vec<I>> = Vec::new();
        let mut it = items.into_iter();
        loop {
            let chunk: Vec<I> = it.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let f = &f;
        // Workers count into the scope of the thread that issued the batch.
        let metrics_scope = current_handle();
        let mut batch_span = span("executor.batch", "engine");
        batch_span.arg("workers", workers as u64);
        let mut results: Vec<Vec<O>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let metrics_scope = metrics_scope.clone();
                    scope.spawn(move || {
                        let _installed = metrics_scope.map(|h| h.install());
                        let _span = span("executor.worker", "engine");
                        chunk.into_iter().map(f).collect::<Vec<O>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("executor worker panicked")).collect()
        });
        let mut out = Vec::with_capacity(results.iter().map(Vec::len).sum());
        for r in &mut results {
            out.append(r);
        }
        out
    }

    /// Map `f` over `items` and flatten the per-item result vectors,
    /// preserving item order.
    pub fn flat_map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> Vec<O> + Sync,
    {
        let nested = self.map(items, f);
        let mut out = Vec::with_capacity(nested.iter().map(Vec::len).sum());
        for mut v in nested {
            out.append(&mut v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_serial_and_parallel() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(Executor::serial().map(items.clone(), |x| x * 2), expect);
        assert_eq!(Executor::new(4).map(items.clone(), |x| x * 2), expect);
        assert_eq!(Executor::new(64).map(items, |x| x * 2), expect);
    }

    #[test]
    fn flat_map_flattens_in_order() {
        let items: Vec<u32> = (0..17).collect();
        let expect: Vec<u32> = items.iter().flat_map(|&x| vec![x, x + 100]).collect();
        assert_eq!(Executor::new(3).flat_map(items, |x| vec![x, x + 100]), expect);
    }
}
