//! # cql-engine — the shared evaluation engine
//!
//! Every query evaluator of the CQL framework lives here, layered on the
//! data model of `cql-core`:
//!
//! * [`algebra`] — relational algebra over generalized relations;
//! * [`calculus`] — bottom-up structural-induction evaluation of
//!   relational calculus + constraints (closed-form via quantifier
//!   elimination);
//! * [`cells`] — the paper's `EVAL_φ` algorithm for cell theories;
//! * [`datalog`] — naive / semi-naive / inflationary fixpoints, both
//!   symbolic and over generalized Herbrand atoms (§3.2), plus a
//!   [`MaterializedView`] that keeps a positive program's IDB
//!   maintained under single-tuple inserts and retracts without
//!   re-running the fixpoint.
//!
//! Three subsystems are shared by all of them:
//!
//! * [`Interner`] — hash-consing of canonical tuples, so a raw
//!   conjunction is canonicalized at most once per evaluation and equal
//!   tuples share one `Arc`'d representation;
//! * [`Executor`] — one scoped-thread parallel map used by every
//!   evaluator instead of per-module thread pools;
//! * `cql_core`'s [`EnginePolicy`] — the subsumption/compression knob
//!   every relation created during evaluation inherits.
//!
//! An [`Engine`] value bundles the three; evaluators take it by
//! reference through their `*_with` entry points, while the plain entry
//! points construct a serial default so existing call sites keep their
//! signatures.
//!
//! ## Observability
//!
//! The whole stack is instrumented through [`trace`] (the `cql-trace`
//! crate, re-exported here): open a [`trace::MetricsScope`] around an
//! evaluation and its counters/operator timings are exact at any
//! executor width (workers install the issuing thread's scope); build
//! the engine with the `trace` cargo feature and run under a
//! [`trace::TraceSession`] to additionally collect spans for every
//! algebra operator, calculus node, fixpoint round, QE call, executor
//! batch and interner epoch. The `datalog::*_explain` entry points
//! return per-round [`trace::RoundStats`] for the EXPLAIN report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod calculus;
pub mod cells;
pub mod datalog;
pub mod executor;
pub mod interner;
pub mod qe_cache;
pub mod runtime;
pub mod server;
pub mod snapshot;
pub mod summary_index;

pub use cql_core::{EnginePolicy, SubsumptionMode};
pub use cql_trace as trace;
pub use datalog::incremental::MaterializedView;
pub use executor::Executor;
pub use interner::Interner;
pub use qe_cache::QeCache;
pub use runtime::Runtime;
pub use server::{Admission, QueryServer, ServerConfig};
pub use snapshot::{Snapshot, SnapshotStore};
pub use summary_index::SummaryIndex;

use cql_core::error::Result;
use cql_core::relation::{GenRelation, GenTuple};
use cql_core::theory::{Theory, Var};

/// The evaluation context: an executor, a tuple interner, a QE memo
/// cache and the policy for relations created during evaluation.
pub struct Engine<T: Theory> {
    /// Parallel map used for per-tuple work batches.
    pub executor: Executor,
    /// Policy inherited by every relation the engine creates.
    pub policy: EnginePolicy,
    interner: Interner<T>,
    qe_cache: QeCache<T>,
}

impl<T: Theory> Default for Engine<T> {
    fn default() -> Self {
        Engine::serial()
    }
}

impl<T: Theory> Engine<T> {
    /// An engine with the given executor and policy (fresh interner).
    #[must_use]
    pub fn new(executor: Executor, policy: EnginePolicy) -> Engine<T> {
        Engine { executor, policy, interner: Interner::new(), qe_cache: QeCache::new() }
    }

    /// The serial engine with default policy.
    #[must_use]
    pub fn serial() -> Engine<T> {
        Engine::new(Executor::serial(), EnginePolicy::default())
    }

    /// An engine over `threads` workers with default policy.
    #[must_use]
    pub fn with_threads(threads: usize) -> Engine<T> {
        Engine::new(Executor::new(threads), EnginePolicy::default())
    }

    /// The engine's interner.
    #[must_use]
    pub fn interner(&self) -> &Interner<T> {
        &self.interner
    }

    /// Canonicalize a raw conjunction through the interner (`None` iff
    /// unsatisfiable).
    pub fn intern(&self, raw: Vec<T::Constraint>) -> Option<GenTuple<T>> {
        self.interner.intern(raw)
    }

    /// Conjoin a tuple with extra constraints through the interner.
    pub fn conjoin(&self, base: &GenTuple<T>, extra: &[T::Constraint]) -> Option<GenTuple<T>> {
        let mut all = base.constraints().to_vec();
        all.extend_from_slice(extra);
        self.intern(all)
    }

    /// An empty relation carrying the engine's policy.
    #[must_use]
    pub fn relation(&self, arity: usize) -> GenRelation<T> {
        GenRelation::with_policy(arity, self.policy)
    }

    /// The engine's QE memo cache.
    #[must_use]
    pub fn qe_cache(&self) -> &QeCache<T> {
        &self.qe_cache
    }

    /// Sampled occupancy/cardinality gauges for the engine's shared
    /// state, as `(name, value)` rows: interner entries (canonical pool
    /// and raw memo) and estimated bytes, QE-cache entries, estimated
    /// bytes, per-shard peak occupancy and shard capacity, plus the
    /// process-global flight-recorder occupancy rows (events
    /// recorded/dropped, ring capacity, per-thread root-ring fill % and
    /// drop counts). The rows feed [`trace::EvalReport::with_gauges`]
    /// and a [`trace::TelemetryRegistry`]'s `set_gauge`; sampling is one
    /// pass over the tables with no solver work.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, u64)> {
        let occupancy = self.qe_cache.shard_occupancy();
        let peak = occupancy.iter().copied().max().unwrap_or(0);
        let mut rows = vec![
            ("interner_entries".to_string(), self.interner.len() as u64),
            ("interner_raw_entries".to_string(), self.interner.raw_len() as u64),
            ("interner_bytes".to_string(), self.interner.bytes_estimate() as u64),
            ("qe_cache_entries".to_string(), self.qe_cache.len() as u64),
            ("qe_cache_bytes".to_string(), self.qe_cache.bytes_estimate() as u64),
            ("qe_cache_shard_peak".to_string(), peak as u64),
            ("qe_cache_shard_capacity".to_string(), self.qe_cache.shard_capacity() as u64),
        ];
        rows.extend(trace::recorder::gauges());
        rows
    }

    /// `∃ var. conj` through the engine's QE memo cache (a direct theory
    /// call when [`EnginePolicy::qe_cache`] is off). All evaluator QE
    /// goes through here, so fixpoint rounds that re-derive a
    /// conjunction skip the solver entirely on the repeat.
    ///
    /// # Errors
    /// Propagates theory errors (which are never cached).
    pub fn eliminate_cached(
        &self,
        conj: &[T::Constraint],
        var: Var,
    ) -> Result<Vec<Vec<T::Constraint>>> {
        if self.policy.qe_cache {
            self.qe_cache.eliminate(conj, var)
        } else {
            T::eliminate(conj, var)
        }
    }
}
