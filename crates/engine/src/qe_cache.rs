//! Bounded memo cache for quantifier elimination.
//!
//! Projection is "the nontrivial operation" of the generalized algebra
//! (§2.1), and fixpoint evaluation re-eliminates the same conjunctions
//! round after round — naive evaluation re-fires every rule against the
//! full instance, so all but the frontier's eliminations are exact
//! repeats. The [`QeCache`] memoizes `(conjunction, variable) → DNF`
//! with the same sharded, clear-on-overflow discipline as the
//! [`crate::Interner`]: lookups take a shard lock briefly, solver work
//! for a miss runs outside any lock, and a full shard is cleared rather
//! than evicted piecemeal (an epoch, marked by a `"qe_cache.epoch"`
//! instant span and counted as [`Counter::QeCacheEpochs`] — a nonzero
//! count in an EXPLAIN report means the working set outgrew the cache
//! and hit rates are about to dip).
//!
//! Hits count [`Counter::QeCacheHits`]; they deliberately do *not* count
//! `Counter::QeCalls`, which is incremented inside the theories' timed QE
//! entry points — so the "QE calls" column of EXPLAIN reports and the E16
//! experiment directly shows solver-visible work shrinking as the cache
//! warms. Errors are returned but never cached: a theory may be asked
//! again (e.g. under a different budget) and must re-raise.

use cql_core::error::Result;
use cql_core::theory::{Theory, Var};
use cql_trace::{count, Counter};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Number of independently locked cache shards (power of two).
const SHARDS: usize = 16;

/// Entry cap per shard; on overflow the shard is cleared.
const MAX_ENTRIES: usize = (1 << 20) / SHARDS;

type Memo<T> = HashMap<(Vec<<T as Theory>::Constraint>, Var), Vec<Vec<<T as Theory>::Constraint>>>;

/// A thread-safe `(conjunction, eliminated variable) → DNF` memo table.
pub struct QeCache<T: Theory> {
    shards: Vec<Mutex<Memo<T>>>,
    per_shard: usize,
}

impl<T: Theory> Default for QeCache<T> {
    fn default() -> Self {
        QeCache::new()
    }
}

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

impl<T: Theory> QeCache<T> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> QeCache<T> {
        QeCache::with_shard_capacity(MAX_ENTRIES)
    }

    /// An empty cache with an explicit per-shard entry cap (tests use a
    /// tiny cap to force overflow epochs deterministically).
    #[must_use]
    pub fn with_shard_capacity(per_shard: usize) -> QeCache<T> {
        QeCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard: per_shard.max(1),
        }
    }

    /// `∃ var. conj` through the memo table. A repeated call with an
    /// equal key returns the cached DNF without touching the theory
    /// solver.
    ///
    /// # Errors
    /// Propagates (and does not cache) theory errors.
    pub fn eliminate(&self, conj: &[T::Constraint], var: Var) -> Result<Vec<Vec<T::Constraint>>> {
        let key = (conj.to_vec(), var);
        let shard = &self.shards[shard_of(&key)];
        {
            let memo = shard.lock().expect("qe cache poisoned");
            if let Some(hit) = memo.get(&key) {
                count(Counter::QeCacheHits, 1);
                return Ok(hit.clone());
            }
        }
        // Solver work happens outside the lock.
        let dnf = T::eliminate(conj, var)?;
        let mut memo = shard.lock().expect("qe cache poisoned");
        if memo.len() >= self.per_shard {
            memo.clear();
            count(Counter::QeCacheEpochs, 1);
            cql_trace::span::instant("qe_cache.epoch", "engine");
        }
        memo.insert(key, dnf.clone());
        Ok(dnf)
    }

    /// Number of memoized eliminations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("qe cache poisoned").len()).sum()
    }

    /// Entries per shard, in shard order — occupancy telemetry (a full
    /// shard is one overflow away from an epoch clear).
    #[must_use]
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().expect("qe cache poisoned").len()).collect()
    }

    /// The per-shard entry cap (shards clear on reaching it).
    #[must_use]
    pub fn shard_capacity(&self) -> usize {
        self.per_shard
    }

    /// Estimated heap bytes held by the memo tables: per-entry table
    /// overhead plus key/value constraint storage. A sampling gauge, not
    /// an allocator measurement.
    #[must_use]
    pub fn bytes_estimate(&self) -> usize {
        let constraint = std::mem::size_of::<T::Constraint>();
        let entry =
            std::mem::size_of::<((Vec<T::Constraint>, Var), Vec<Vec<T::Constraint>>)>() + 16;
        self.shards
            .iter()
            .map(|s| {
                let memo = s.lock().expect("qe cache poisoned");
                let constraints: usize = memo
                    .iter()
                    .map(|((key, _), dnf)| key.len() + dnf.iter().map(Vec::len).sum::<usize>())
                    .sum();
                memo.len() * entry + constraints * constraint
            })
            .sum()
    }

    /// True iff nothing has been memoized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cql_dense::{Dense, DenseConstraint};
    use cql_trace::MetricsScope;

    #[test]
    fn overflow_clears_are_counted_as_epochs() {
        let cache: QeCache<Dense> = QeCache::with_shard_capacity(1);
        let scope = MetricsScope::enter("test.qe_epochs");
        for i in 0..32 {
            let conj = vec![DenseConstraint::eq_const(0, i)];
            cache.eliminate(&conj, 0).unwrap();
        }
        let snap = scope.snapshot();
        // 32 distinct keys over 16 shards with a 1-entry cap: at least one
        // shard must have overflowed and cleared.
        assert!(snap.get(Counter::QeCacheEpochs) > 0, "no epoch counted");
        assert_eq!(snap.get(Counter::QeCalls), 32, "every miss reaches the solver");
    }

    #[test]
    fn default_capacity_counts_no_epochs_on_small_workloads() {
        let cache: QeCache<Dense> = QeCache::new();
        let scope = MetricsScope::enter("test.qe_no_epochs");
        for i in 0..32 {
            let conj = vec![DenseConstraint::eq_const(0, i)];
            cache.eliminate(&conj, 0).unwrap();
        }
        assert_eq!(scope.snapshot().get(Counter::QeCacheEpochs), 0);
    }
}
