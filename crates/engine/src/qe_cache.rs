//! Bounded memo cache for quantifier elimination.
//!
//! Projection is "the nontrivial operation" of the generalized algebra
//! (§2.1), and fixpoint evaluation re-eliminates the same conjunctions
//! round after round — naive evaluation re-fires every rule against the
//! full instance, so all but the frontier's eliminations are exact
//! repeats. The [`QeCache`] memoizes `(conjunction, variable) → DNF`
//! with the same sharded, clear-on-overflow discipline as the
//! [`crate::Interner`]: lookups take a shard lock briefly, solver work
//! for a miss runs outside any lock, and a full shard is cleared rather
//! than evicted piecemeal (an epoch, marked by a `"qe_cache.epoch"`
//! instant span).
//!
//! Hits count [`Counter::QeCacheHits`]; they deliberately do *not* count
//! `Counter::QeCalls`, which is incremented inside the theories' timed QE
//! entry points — so the "QE calls" column of EXPLAIN reports and the E16
//! experiment directly shows solver-visible work shrinking as the cache
//! warms. Errors are returned but never cached: a theory may be asked
//! again (e.g. under a different budget) and must re-raise.

use cql_core::error::Result;
use cql_core::theory::{Theory, Var};
use cql_trace::{count, Counter};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Number of independently locked cache shards (power of two).
const SHARDS: usize = 16;

/// Entry cap per shard; on overflow the shard is cleared.
const MAX_ENTRIES: usize = (1 << 20) / SHARDS;

type Memo<T> = HashMap<(Vec<<T as Theory>::Constraint>, Var), Vec<Vec<<T as Theory>::Constraint>>>;

/// A thread-safe `(conjunction, eliminated variable) → DNF` memo table.
pub struct QeCache<T: Theory> {
    shards: Vec<Mutex<Memo<T>>>,
}

impl<T: Theory> Default for QeCache<T> {
    fn default() -> Self {
        QeCache::new()
    }
}

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

impl<T: Theory> QeCache<T> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> QeCache<T> {
        QeCache { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    /// `∃ var. conj` through the memo table. A repeated call with an
    /// equal key returns the cached DNF without touching the theory
    /// solver.
    ///
    /// # Errors
    /// Propagates (and does not cache) theory errors.
    pub fn eliminate(&self, conj: &[T::Constraint], var: Var) -> Result<Vec<Vec<T::Constraint>>> {
        let key = (conj.to_vec(), var);
        let shard = &self.shards[shard_of(&key)];
        {
            let memo = shard.lock().expect("qe cache poisoned");
            if let Some(hit) = memo.get(&key) {
                count(Counter::QeCacheHits, 1);
                return Ok(hit.clone());
            }
        }
        // Solver work happens outside the lock.
        let dnf = T::eliminate(conj, var)?;
        let mut memo = shard.lock().expect("qe cache poisoned");
        if memo.len() >= MAX_ENTRIES {
            memo.clear();
            cql_trace::span::instant("qe_cache.epoch", "engine");
        }
        memo.insert(key, dnf.clone());
        Ok(dnf)
    }

    /// Number of memoized eliminations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("qe cache poisoned").len()).sum()
    }

    /// True iff nothing has been memoized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
