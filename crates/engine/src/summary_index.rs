//! Summary index: filter-before-solve candidate enumeration for joins.
//!
//! Pairwise operators (product-style joins, intersections, rule firing)
//! conjoin every tuple of one side with every tuple of the other and pay
//! a solver call per pair. A [`SummaryIndex`] is built once per operator
//! over one side's [`ConstraintSummary`]s and buckets them by a single
//! *ranged* dimension (the paper's §1.1(3) move: project a generalized
//! tuple to an interval and search the cheap projections first):
//!
//! * pinned dimensions (`lo == hi`) land in a [`BTreeMap`] keyed by the
//!   point, so a probe interval selects buckets via an `O(log n)` range
//!   scan — the grid case that dominates active-domain workloads;
//! * bounded-but-not-pinned dimensions keep their closed [`Interval`]
//!   hull in a span list probed by linear intersection;
//! * summaries unbounded at the chosen dimension are always candidates.
//!
//! Candidates then pass through [`ConstraintSummary::may_intersect`]
//! before the caller spends a solver call. Both stages are sound: the
//! closed-hull bucketing only widens intervals, and `may_intersect` obeys
//! the soundness law of [`cql_core::summary`] — so pruning never changes
//! results, only skips pairs that were doomed to canonicalize to ⊥.
//!
//! The index is rebuilt at operator entry (`O(n)` summaries) rather than
//! maintained incrementally: relations mutate freely between operators,
//! and the build cost is dwarfed by even a handful of avoided solver
//! calls.

use cql_arith::Rat;
use cql_core::summary::ConstraintSummary;
use cql_core::theory::{Theory, Var};
use cql_index::Interval;
use cql_trace::{count, span, Counter};
use std::collections::{BTreeMap, HashMap};

/// One per-variable bucket level: the reusable core of both the
/// single-dimension [`SummaryIndex`] and the multiway [`SummaryTrie`].
/// Holds only entry *indices* bucketed by their closed range hull at one
/// dimension; the owning structure keeps the summaries themselves.
pub struct SummaryLevel {
    len: usize,
    /// Entries pinned at the level's dimension (`lo == hi`), keyed by
    /// the point.
    points: BTreeMap<Rat, Vec<usize>>,
    /// Entries bounded but not pinned: closed interval hulls.
    spans: Vec<(Interval, usize)>,
    /// Entries unbounded at the dimension — candidates for every probe.
    rest: Vec<usize>,
}

impl SummaryLevel {
    /// Bucket `summaries` by their closed hull at dimension `dim`.
    pub fn build<'a, S, I>(dim: Var, summaries: I) -> SummaryLevel
    where
        S: ConstraintSummary + 'a,
        I: IntoIterator<Item = &'a S>,
    {
        let mut points: BTreeMap<Rat, Vec<usize>> = BTreeMap::new();
        let mut spans: Vec<(Interval, usize)> = Vec::new();
        let mut rest: Vec<usize> = Vec::new();
        let mut len = 0;
        for (i, s) in summaries.into_iter().enumerate() {
            len += 1;
            match s.range(dim) {
                Some((lo, hi)) if lo == hi => points.entry(lo).or_default().push(i),
                Some((lo, hi)) => spans.push((Interval::new(lo, hi), i)),
                None => rest.push(i),
            }
        }
        SummaryLevel { len, points, spans, rest }
    }

    /// Number of bucketed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the level holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many entries actually range the level's dimension (the rest
    /// are returned by every probe).
    #[must_use]
    pub fn bucketed(&self) -> usize {
        self.len - self.rest.len()
    }

    /// Estimated heap bytes held by the level's bucket structures
    /// (points map, span list, catch-all) — a sampling gauge for
    /// telemetry, not an allocator measurement.
    #[must_use]
    pub fn bytes_estimate(&self) -> usize {
        let point_entry = std::mem::size_of::<(Rat, Vec<usize>)>() + 16;
        let id = std::mem::size_of::<usize>();
        let point_ids: usize = self.points.values().map(Vec::len).sum();
        self.points.len() * point_entry
            + point_ids * id
            + self.spans.len() * std::mem::size_of::<(Interval, usize)>()
            + self.rest.len() * id
    }

    /// Entry indices whose hull at the level's dimension meets the closed
    /// probe `range`; all entries (in index order) when the probe is
    /// unranged. Sound: two summaries whose closed hulls at one dimension
    /// are disjoint cannot share a solution at that dimension.
    #[must_use]
    pub fn candidates(&self, range: Option<(Rat, Rat)>) -> Vec<usize> {
        let Some((lo, hi)) = range else {
            return (0..self.len).collect();
        };
        let mut out: Vec<usize> = Vec::new();
        for ids in self.points.range(lo.clone()..=hi.clone()).map(|(_, ids)| ids) {
            out.extend_from_slice(ids);
        }
        let probe = Interval::new(lo, hi);
        for (iv, i) in &self.spans {
            if iv.intersects(&probe) {
                out.push(*i);
            }
        }
        out.extend_from_slice(&self.rest);
        out
    }
}

/// One [`SummaryLevel`] per variable of a join atom: the per-atom side of
/// the multiway (leapfrog-style) rule-body join. A candidate binding's
/// accumulated range at a variable probes the atom's level at that
/// variable; an entry survives only if every probed level admits it.
///
/// Theories whose summaries range nothing (the boolean algebras) put
/// every entry in each level's catch-all bucket, degenerating to plain
/// `may_intersect` filtering — sound, just unselective.
pub struct SummaryTrie {
    levels: BTreeMap<Var, SummaryLevel>,
}

impl SummaryTrie {
    /// Build one level per distinct variable in `vars` over the entry
    /// summaries.
    pub fn build<S: ConstraintSummary>(summaries: &[S], vars: &[Var]) -> SummaryTrie {
        let mut levels = BTreeMap::new();
        for &v in vars {
            levels.entry(v).or_insert_with(|| SummaryLevel::build(v, summaries.iter()));
        }
        SummaryTrie { levels }
    }

    /// The level at `var`, if one was built.
    #[must_use]
    pub fn level(&self, var: Var) -> Option<&SummaryLevel> {
        self.levels.get(&var)
    }
}

/// The bucket dimension ranged by the most summaries, smallest variable
/// on ties (deterministic across runs and thread counts); `None` when no
/// summary ranges anything.
#[must_use]
pub fn majority_dim<S: ConstraintSummary>(summaries: &[S]) -> Option<Var> {
    let mut freq: HashMap<Var, usize> = HashMap::new();
    for s in summaries {
        for v in s.ranged_dims() {
            *freq.entry(v).or_insert(0) += 1;
        }
    }
    freq.into_iter().max_by_key(|&(v, n)| (n, std::cmp::Reverse(v))).map(|(v, _)| v)
}

/// A one-dimensional bucket index over the summaries of one join side.
pub struct SummaryIndex<T: Theory> {
    summaries: Vec<T::Summary>,
    /// The bucketed dimension, `None` when no summary ranges anything
    /// (every probe then returns all entries).
    dim: Option<Var>,
    /// The bucket level at `dim` (empty buckets when `dim` is `None`).
    level: SummaryLevel,
}

impl<T: Theory> SummaryIndex<T> {
    /// Build an index over one conjunction per tuple, choosing the bucket
    /// dimension that the most summaries bound.
    pub fn build<'a, I>(conjs: I) -> SummaryIndex<T>
    where
        I: IntoIterator<Item = &'a [T::Constraint]>,
        T::Constraint: 'a,
    {
        let summaries: Vec<T::Summary> = conjs.into_iter().map(|c| T::summary(c)).collect();
        let dim = majority_dim(&summaries);
        SummaryIndex::with_summaries(summaries, dim)
    }

    /// Build with precomputed summaries and a caller-chosen dimension
    /// (e.g. a join column). `None` disables bucketing; probes then fall
    /// back to `may_intersect` over all entries.
    #[must_use]
    pub fn with_summaries(summaries: Vec<T::Summary>, dim: Option<Var>) -> SummaryIndex<T> {
        let mut sp = span("summary_index.build", "engine");
        sp.arg("tuples", summaries.len() as u64);
        let level = match dim {
            Some(d) => SummaryLevel::build(d, summaries.iter()),
            None => SummaryLevel {
                len: summaries.len(),
                points: BTreeMap::new(),
                spans: Vec::new(),
                rest: Vec::new(),
            },
        };
        sp.arg("bucketed", level.bucketed() as u64);
        SummaryIndex { summaries, dim, level }
    }

    /// Number of indexed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.summaries.len()
    }

    /// True iff the index holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.summaries.is_empty()
    }

    /// Estimated heap bytes held by the index: the stored summaries plus
    /// the bucket level. A sampling gauge for telemetry.
    #[must_use]
    pub fn bytes_estimate(&self) -> usize {
        self.summaries.len() * std::mem::size_of::<T::Summary>() + self.level.bytes_estimate()
    }

    /// Indices whose bucket at the index dimension meets `range` (a
    /// closed probe interval at that dimension); all entries when the
    /// probe or the index is unranged. Bucket-stage only — sound because
    /// two summaries whose closed hulls at one dimension are disjoint
    /// cannot share a solution at that dimension.
    fn bucket_candidates(&self, range: Option<(Rat, Rat)>) -> Vec<usize> {
        let (Some(_), Some(range)) = (self.dim, range) else {
            return (0..self.summaries.len()).collect();
        };
        self.level.candidates(Some(range))
    }

    /// Candidate entries for a probe summary: bucket scan at the index
    /// dimension, then [`ConstraintSummary::may_intersect`] on the
    /// survivors. Counts [`Counter::PruneCandidates`] (pairs an
    /// exhaustive enumeration would solve) and
    /// [`Counter::PruneSurvivors`] (pairs actually handed to the solver).
    #[must_use]
    pub fn matches(&self, probe: &T::Summary) -> Vec<usize> {
        count(Counter::PruneCandidates, self.summaries.len() as u64);
        let range = self.dim.and_then(|d| probe.range(d));
        let survivors: Vec<usize> = self
            .bucket_candidates(range)
            .into_iter()
            .filter(|&i| probe.may_intersect(&self.summaries[i]))
            .collect();
        count(Counter::PruneSurvivors, survivors.len() as u64);
        survivors
    }

    /// Candidate entries for a raw probe interval at the index dimension
    /// (used by equi-joins, where the probe lives in the *other* side's
    /// column space and only the joined column is comparable). Bucket
    /// stage only; same counters as [`SummaryIndex::matches`].
    #[must_use]
    pub fn matches_range(&self, range: Option<(Rat, Rat)>) -> Vec<usize> {
        count(Counter::PruneCandidates, self.summaries.len() as u64);
        let survivors = self.bucket_candidates(range);
        count(Counter::PruneSurvivors, survivors.len() as u64);
        survivors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cql_core::summary::BoxSummary;

    /// A stand-in theory is overkill here: exercise the index through
    /// summaries directly via `with_summaries`, using the dense theory's
    /// summary shape.
    enum Probe {}
    impl Theory for Probe {
        type Constraint = std::convert::Infallible;
        type Value = Rat;
        type Summary = BoxSummary;
        fn name() -> &'static str {
            "probe"
        }
        fn summary(_: &[Self::Constraint]) -> BoxSummary {
            BoxSummary::new()
        }
        fn canonicalize(_: &[Self::Constraint]) -> Option<Vec<Self::Constraint>> {
            Some(Vec::new())
        }
        fn eliminate(
            _: &[Self::Constraint],
            _: Var,
        ) -> cql_core::error::Result<Vec<Vec<Self::Constraint>>> {
            Ok(Vec::new())
        }
        fn negate(c: &Self::Constraint) -> Vec<Self::Constraint> {
            match *c {}
        }
        fn var_eq(_: Var, _: Var) -> Self::Constraint {
            unreachable!()
        }
        fn var_const_eq(_: Var, _: &Rat) -> Self::Constraint {
            unreachable!()
        }
        fn eval(c: &Self::Constraint, _: &[Rat]) -> bool {
            match *c {}
        }
        fn rename(c: &Self::Constraint, _: &dyn Fn(Var) -> Var) -> Self::Constraint {
            match *c {}
        }
        fn vars(c: &Self::Constraint) -> Vec<Var> {
            match *c {}
        }
        fn constants(c: &Self::Constraint) -> Vec<Rat> {
            match *c {}
        }
        fn entails(_: &[Self::Constraint], _: &[Self::Constraint]) -> bool {
            true
        }
        fn sample(_: &[Self::Constraint], arity: usize) -> Option<Vec<Rat>> {
            Some(vec![Rat::from(0); arity])
        }
    }

    fn pinned(v: Var, k: i64) -> BoxSummary {
        let mut b = BoxSummary::new();
        b.pin(v, Rat::from(k));
        b
    }

    #[test]
    fn point_buckets_prune_disjoint_pins() {
        let entries: Vec<BoxSummary> = (0..10).map(|k| pinned(0, k)).collect();
        let idx = SummaryIndex::<Probe>::with_summaries(entries, Some(0));
        assert_eq!(idx.matches(&pinned(0, 3)), vec![3]);
        assert!(idx.matches(&pinned(0, 42)).is_empty());
    }

    #[test]
    fn unranged_probe_sees_everything() {
        let entries: Vec<BoxSummary> = (0..4).map(|k| pinned(0, k)).collect();
        let idx = SummaryIndex::<Probe>::with_summaries(entries, Some(0));
        assert_eq!(idx.matches(&BoxSummary::new()).len(), 4);
        assert_eq!(idx.matches_range(None).len(), 4);
    }

    #[test]
    fn spans_and_rest_are_probed() {
        let mut ranged = BoxSummary::new();
        ranged.bound_below(0, Rat::from(2), false);
        ranged.bound_above(0, Rat::from(5), false);
        let unbounded = BoxSummary::new();
        let idx =
            SummaryIndex::<Probe>::with_summaries(vec![ranged, unbounded, pinned(0, 9)], Some(0));
        // Probe [4,6]: meets the span and the unbounded entry, not the pin.
        let mut probe = BoxSummary::new();
        probe.bound_below(0, Rat::from(4), false);
        probe.bound_above(0, Rat::from(6), false);
        let mut got = idx.matches(&probe);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn second_dimension_still_filters_candidates() {
        // Both entries share the bucket at dim 0 but one conflicts at dim 1.
        let mut a = pinned(0, 1);
        a.pin(1, Rat::from(7));
        let mut b = pinned(0, 1);
        b.pin(1, Rat::from(8));
        let idx = SummaryIndex::<Probe>::with_summaries(vec![a, b], Some(0));
        let mut probe = pinned(0, 1);
        probe.pin(1, Rat::from(7));
        assert_eq!(idx.matches(&probe), vec![0]);
    }
}
