//! Hash-consing tuple interner.
//!
//! Canonicalization is the single most repeated unit of work in
//! bottom-up evaluation: fixpoint iteration re-derives the same raw
//! constraint conjunctions round after round, and each
//! [`GenTuple::new`] call re-runs the theory's solver on them. The
//! interner memoizes that step — a raw conjunction is canonicalized
//! exactly once — and hash-conses the results, so every equal canonical
//! tuple in the system shares one `Arc`'d representation ([`GenTuple`]
//! clones are reference-count bumps, and equality between interned
//! tuples short-circuits on pointer identity).
//!
//! Lock discipline: the pool is split into `SHARDS` independently
//! locked shards keyed by the conjunction's hash, so parallel executor
//! workers rarely contend; lookups take a shard lock briefly, and the
//! (possibly expensive) canonicalization of a missed conjunction always
//! runs *outside* any lock, so workers never serialize on a solver call.

use cql_core::relation::GenTuple;
use cql_core::theory::Theory;
use cql_trace::{count, Counter};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Number of independently locked pool shards (power of two).
const SHARDS: usize = 16;

/// Entry cap per shard memo table; on overflow the table is cleared
/// (simple, and workloads that big have long since amortized their wins).
const MAX_ENTRIES: usize = (1 << 20) / SHARDS;

struct Pools<T: Theory> {
    /// Memoized canonicalization: raw conjunction → canonical tuple
    /// (`None` = unsatisfiable).
    raw: HashMap<Vec<T::Constraint>, Option<GenTuple<T>>>,
    /// Hash-consing of canonical forms: canonical constraints → the one
    /// shared tuple representation.
    canon: HashMap<Vec<T::Constraint>, GenTuple<T>>,
}

/// A thread-safe canonical-tuple pool. See the module docs.
pub struct Interner<T: Theory> {
    shards: Vec<Mutex<Pools<T>>>,
}

impl<T: Theory> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

impl<T: Theory> Interner<T> {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Interner<T> {
        Interner {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Pools { raw: HashMap::new(), canon: HashMap::new() }))
                .collect(),
        }
    }

    /// Canonicalize a raw conjunction through the pool: `None` iff
    /// unsatisfiable. Repeated calls with an equal conjunction skip the
    /// solver and return the shared canonical tuple.
    pub fn intern(&self, raw: Vec<T::Constraint>) -> Option<GenTuple<T>> {
        let shard = &self.shards[shard_of(&raw)];
        {
            let pools = shard.lock().expect("interner poisoned");
            if let Some(hit) = pools.raw.get(&raw) {
                count(Counter::InternHits, 1);
                return hit.clone();
            }
        }
        count(Counter::InternMisses, 1);
        // Solver work happens outside the lock.
        let canonical = GenTuple::<T>::new(raw.clone());
        let shared = canonical.map(|t| self.canonical(t));
        let mut pools = shard.lock().expect("interner poisoned");
        if pools.raw.len() >= MAX_ENTRIES {
            pools.raw.clear();
            count(Counter::InternerEpochs, 1);
            cql_trace::span::instant("interner.epoch", "interner");
        }
        pools.raw.insert(raw, shared.clone());
        shared
    }

    /// The shared representative of an already-canonical tuple. Equal
    /// tuples interned through one pool return pointer-identical
    /// representations.
    pub fn canonical(&self, tuple: GenTuple<T>) -> GenTuple<T> {
        let shard = &self.shards[shard_of(&tuple.constraints())];
        let mut pools = shard.lock().expect("interner poisoned");
        if pools.canon.len() >= MAX_ENTRIES {
            pools.canon.clear();
            count(Counter::InternerEpochs, 1);
            cql_trace::span::instant("interner.epoch", "interner");
        }
        pools.canon.entry(tuple.constraints().to_vec()).or_insert(tuple).clone()
    }

    /// Number of distinct canonical tuples in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("interner poisoned").canon.len()).sum()
    }

    /// Number of memoized raw-conjunction entries (the
    /// canonicalization memo, as opposed to the hash-consing pool).
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("interner poisoned").raw.len()).sum()
    }

    /// Estimated heap bytes held by the memo tables: per-entry table
    /// overhead plus the keys' constraint storage. A sampling gauge for
    /// telemetry (one pass over the tables, no solver work), not an
    /// allocator measurement.
    #[must_use]
    pub fn bytes_estimate(&self) -> usize {
        let constraint = std::mem::size_of::<T::Constraint>();
        let raw_entry =
            std::mem::size_of::<(Vec<T::Constraint>, Option<GenTuple<T>>)>() + ENTRY_OVERHEAD;
        let canon_entry = std::mem::size_of::<(Vec<T::Constraint>, GenTuple<T>)>() + ENTRY_OVERHEAD;
        self.shards
            .iter()
            .map(|s| {
                let pools = s.lock().expect("interner poisoned");
                let raw_constraints: usize = pools.raw.keys().map(Vec::len).sum();
                let canon_constraints: usize = pools.canon.keys().map(Vec::len).sum();
                pools.raw.len() * raw_entry
                    + pools.canon.len() * canon_entry
                    + (raw_constraints + canon_constraints) * constraint
            })
            .sum()
    }

    /// True iff nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Approximate per-entry bookkeeping of a `std::collections::HashMap`
/// (control byte + padding amortized), shared by the size estimators.
const ENTRY_OVERHEAD: usize = 16;
