//! Datalog + constraints: AST and bottom-up evaluation engines.
//!
//! * [`ast`] — rules and programs (Definition 1.10);
//! * [`symbolic`] — naive / semi-naive / inflationary fixpoints by joining
//!   generalized tuples and eliminating quantifiers;
//! * [`plan`] — per-rule multiway join planning (variable elimination
//!   orders, cached per-atom summary levels, the leapfrog search);
//! * [`incremental`] — a [`incremental::MaterializedView`] keeping a
//!   positive program's IDB maintained under single-tuple EDB inserts
//!   and retracts (counting/DRed support tracking, delta-restricted
//!   firings over the multiway plans);
//! * [`herbrand`] — the §3.2 generalized-Herbrand-atom (cell-based)
//!   evaluation for theories with finite cell decompositions, including
//!   the §3.3 parallel evaluation and derivation-tree statistics.

pub mod analysis;
pub mod ast;
pub mod herbrand;
pub mod incremental;
pub mod plan;
pub mod symbolic;

pub use analysis::{is_piecewise_linear, predicate_sccs, stratified, stratify};
pub use ast::{Atom, Literal, Program, Rule};
pub use herbrand::{
    cell_inflationary, cell_naive, cell_parallel, CellFixpointResult, DerivationStats,
};
pub use incremental::MaterializedView;
pub use plan::JoinPlan;
pub use symbolic::{
    inflationary, naive, naive_explain, naive_explain_with, seminaive, seminaive_explain,
    seminaive_explain_with, seminaive_with, FixpointOptions, FixpointResult,
};
