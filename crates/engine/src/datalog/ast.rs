//! Datalog + constraints: rules and programs (Definition 1.10).

use cql_core::error::{CqlError, Result};
use cql_core::relation::Database;
use cql_core::theory::{Theory, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A relational atom `R(x₁..x_k)` with rule-local variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// Predicate symbol.
    pub relation: String,
    /// Argument variables.
    pub vars: Vec<Var>,
}

impl Atom {
    /// Builder.
    #[must_use]
    pub fn new(relation: impl Into<String>, vars: impl Into<Vec<Var>>) -> Atom {
        Atom { relation: relation.into(), vars: vars.into() }
    }
}

/// A body literal: positive atom, negated atom (Datalog¬ only), or a
/// constraint of the theory.
#[derive(Debug)]
pub enum Literal<T: Theory> {
    /// `R(x̄)`.
    Pos(Atom),
    /// `¬R(x̄)` — only meaningful under inflationary semantics (§1.2).
    Neg(Atom),
    /// A constraint from the theory.
    Constraint(T::Constraint),
}

impl<T: Theory> Clone for Literal<T> {
    fn clone(&self) -> Self {
        match self {
            Literal::Pos(a) => Literal::Pos(a.clone()),
            Literal::Neg(a) => Literal::Neg(a.clone()),
            Literal::Constraint(c) => Literal::Constraint(c.clone()),
        }
    }
}

impl<T: Theory> PartialEq for Literal<T> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Literal::Pos(a), Literal::Pos(b)) | (Literal::Neg(a), Literal::Neg(b)) => a == b,
            (Literal::Constraint(a), Literal::Constraint(b)) => a == b,
            _ => false,
        }
    }
}

impl<T: Theory> Eq for Literal<T> {}

/// A rule `head :- body`.
///
/// Variables are rule-local indices `0..n`. Repeated variables in body
/// atoms mean column equality; the head must use distinct variables
/// (equalities belong in the body, matching the paper's normal form).
#[derive(Debug)]
pub struct Rule<T: Theory> {
    /// Head atom (an IDB predicate).
    pub head: Atom,
    /// Body literals.
    pub body: Vec<Literal<T>>,
}

impl<T: Theory> Rule<T> {
    /// Builder.
    #[must_use]
    pub fn new(head: Atom, body: Vec<Literal<T>>) -> Rule<T> {
        Rule { head, body }
    }

    /// Number of rule-local variables (max index + 1).
    #[must_use]
    pub fn var_count(&self) -> usize {
        let mut max = None;
        for &v in &self.head.vars {
            max = max.max(Some(v));
        }
        for lit in &self.body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => {
                    for &v in &a.vars {
                        max = max.max(Some(v));
                    }
                }
                Literal::Constraint(c) => {
                    for v in T::vars(c) {
                        max = max.max(Some(v));
                    }
                }
            }
        }
        max.map_or(0, |v| v + 1)
    }

    /// Constants mentioned by the rule's constraints.
    #[must_use]
    pub fn constants(&self) -> Vec<T::Value> {
        self.body
            .iter()
            .filter_map(|lit| match lit {
                Literal::Constraint(c) => Some(T::constants(c)),
                _ => None,
            })
            .flatten()
            .collect()
    }
}

impl<T: Theory> Clone for Rule<T> {
    fn clone(&self) -> Self {
        Rule { head: self.head.clone(), body: self.body.clone() }
    }
}

impl<T: Theory> PartialEq for Rule<T> {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.body == other.body
    }
}

impl<T: Theory> Eq for Rule<T> {}

/// A Datalog (or Datalog¬) query program: a finite set of rules.
#[derive(Debug)]
pub struct Program<T: Theory> {
    /// The rules, in declaration order.
    pub rules: Vec<Rule<T>>,
}

impl<T: Theory> Clone for Program<T> {
    fn clone(&self) -> Self {
        Program { rules: self.rules.clone() }
    }
}

impl<T: Theory> Default for Program<T> {
    fn default() -> Self {
        Program { rules: Vec::new() }
    }
}

impl<T: Theory> Program<T> {
    /// Builder.
    #[must_use]
    pub fn new(rules: Vec<Rule<T>>) -> Program<T> {
        Program { rules }
    }

    /// Intentional predicates: those appearing in rule heads.
    #[must_use]
    pub fn idb_predicates(&self) -> BTreeSet<String> {
        self.rules.iter().map(|r| r.head.relation.clone()).collect()
    }

    /// Extensional predicates: body predicates that are never heads.
    #[must_use]
    pub fn edb_predicates(&self) -> BTreeSet<String> {
        let idb = self.idb_predicates();
        let mut out = BTreeSet::new();
        for rule in &self.rules {
            for lit in &rule.body {
                if let Literal::Pos(a) | Literal::Neg(a) = lit {
                    if !idb.contains(&a.relation) {
                        out.insert(a.relation.clone());
                    }
                }
            }
        }
        out
    }

    /// Arity of each predicate, inferred from all occurrences.
    ///
    /// # Errors
    /// `CqlError::Malformed` on inconsistent arities.
    pub fn arities(&self) -> Result<BTreeMap<String, usize>> {
        let mut out: BTreeMap<String, usize> = BTreeMap::new();
        let mut note = |name: &str, arity: usize| -> Result<()> {
            match out.get(name) {
                Some(&a) if a != arity => Err(CqlError::Malformed(format!(
                    "predicate `{name}` used with arities {a} and {arity}"
                ))),
                Some(_) => Ok(()),
                None => {
                    out.insert(name.to_string(), arity);
                    Ok(())
                }
            }
        };
        for rule in &self.rules {
            note(&rule.head.relation, rule.head.vars.len())?;
            for lit in &rule.body {
                if let Literal::Pos(a) | Literal::Neg(a) = lit {
                    note(&a.relation, a.vars.len())?;
                }
            }
        }
        Ok(out)
    }

    /// True iff the program has negated literals (requires inflationary
    /// semantics).
    #[must_use]
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(|r| r.body.iter().any(|l| matches!(l, Literal::Neg(_))))
    }

    /// Validate against an EDB database: every EDB predicate exists with
    /// the right arity; head variables are distinct; negated atoms only
    /// where allowed by the caller.
    ///
    /// # Errors
    /// `CqlError` variants describing the problem.
    pub fn validate(&self, edb: &Database<T>, allow_negation: bool) -> Result<()> {
        let arities = self.arities()?;
        let idb = self.idb_predicates();
        for (name, &arity) in &arities {
            if !idb.contains(name) {
                let rel = edb.require(name)?;
                if rel.arity() != arity {
                    return Err(CqlError::ArityMismatch {
                        relation: name.clone(),
                        expected: rel.arity(),
                        found: arity,
                    });
                }
            }
        }
        for rule in &self.rules {
            let mut seen = BTreeSet::new();
            for &v in &rule.head.vars {
                if !seen.insert(v) {
                    return Err(CqlError::Malformed(format!(
                        "repeated variable {v} in head of rule for `{}` (use a body equality)",
                        rule.head.relation
                    )));
                }
            }
            if idb.contains(&rule.head.relation) && edb.get(&rule.head.relation).is_some() {
                return Err(CqlError::Malformed(format!(
                    "predicate `{}` is both an EDB relation and a rule head",
                    rule.head.relation
                )));
            }
            if !allow_negation {
                for lit in &rule.body {
                    if let Literal::Neg(a) = lit {
                        return Err(CqlError::Malformed(format!(
                            "negated atom `{}` requires inflationary Datalog¬ evaluation",
                            a.relation
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// All constants mentioned by rule constraints.
    #[must_use]
    pub fn constants(&self) -> Vec<T::Value> {
        let mut out: Vec<T::Value> = self.rules.iter().flat_map(Rule::constants).collect();
        cql_core::relation::dedup_values(&mut out);
        out
    }
}

impl<T: Theory> fmt::Display for Rule<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_atom = |f: &mut fmt::Formatter<'_>, a: &Atom| -> fmt::Result {
            write!(f, "{}(", a.relation)?;
            for (i, v) in a.vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "x{v}")?;
            }
            write!(f, ")")
        };
        fmt_atom(f, &self.head)?;
        write!(f, " :- ")?;
        for (i, lit) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match lit {
                Literal::Pos(a) => fmt_atom(f, a)?,
                Literal::Neg(a) => {
                    write!(f, "¬")?;
                    fmt_atom(f, a)?;
                }
                Literal::Constraint(c) => write!(f, "{c}")?,
            }
        }
        Ok(())
    }
}
