//! Generalized naive evaluation over cells — the constraint-logic-
//! programming machinery of §3.2 of the paper, generically over any
//! [`CellTheory`].
//!
//! A *generalized IDB Herbrand atom* (Definition 3.16) is a predicate
//! symbol plus a cell (r-configuration / e-configuration) on its argument
//! variables. The `T_P` operator (Definition 3.18) fires a rule by
//! choosing a cell ξ over the rule's variables, checking `F(ξ) → C` for
//! the rule constraints (at a sample point, justified by Lemmas 3.9/3.10),
//! checking each body atom on the projection of ξ, and deriving the head
//! atom as the projection of ξ onto the head variables.
//!
//! Iterating `T_P` from empty IDBs yields the least model `L_P`
//! (Theorem 3.19); soundness and completeness against point-wise naive
//! evaluation is Theorem 3.20, which the integration tests check by
//! sampling. [`cell_parallel`] fires every candidate in every round
//! concurrently, realizing the §3.3 observation that parallel rounds =
//! minimum generalized-derivation-tree depth.

use crate::datalog::ast::{Literal, Program};
use crate::datalog::symbolic::{FixpointOptions, FixpointResult};
use crate::executor::Executor;
use cql_core::error::{CqlError, Result};
use cql_core::relation::{dedup_values, Database, GenRelation, GenTuple};
use cql_core::theory::CellTheory;
use std::collections::{BTreeMap, HashMap};

/// A body check that must be re-evaluated every round (IDB membership).
#[derive(Clone, Debug)]
struct IdbCheck<T: CellTheory> {
    relation: String,
    /// Projection of the rule cell onto the atom's variables.
    cell: T::Cell,
    /// `true` for a positive literal, `false` for a negated one.
    positive: bool,
}

/// A pre-filtered rule firing candidate: a rule cell that already passes
/// all constraints and all EDB atom checks, so each round only needs the
/// IDB membership tests.
#[derive(Clone, Debug)]
struct Candidate<T: CellTheory> {
    head_relation: usize,
    head_cell: T::Cell,
    idb_checks: Vec<IdbCheck<T>>,
    /// EDB body atoms (each a leaf of the derivation tree).
    edb_leaves: usize,
}

/// Derivation statistics for the fringe analysis of §3.3.
#[derive(Clone, Debug, Default)]
pub struct DerivationStats {
    /// Maximum depth over all derived atoms of a minimum-depth
    /// generalized derivation tree (= number of parallel rounds needed).
    pub max_depth: usize,
    /// Maximum number of leaves over all derived atoms of the derivation
    /// tree recorded at first derivation (the "fringe").
    pub max_fringe: usize,
    /// Total generalized Herbrand atoms derived.
    pub atoms_derived: usize,
}

/// Result of a cell-based fixpoint.
#[derive(Clone, Debug)]
pub struct CellFixpointResult<T: CellTheory> {
    /// IDB relations, converted back to generalized relations
    /// (disjunctions of cell formulas `F(ξ)`).
    pub idb: Database<T>,
    /// Rounds executed.
    pub iterations: usize,
    /// Derivation-tree statistics.
    pub stats: DerivationStats,
}

impl<T: CellTheory> CellFixpointResult<T> {
    /// View as a plain [`FixpointResult`].
    #[must_use]
    pub fn into_fixpoint(self) -> FixpointResult<T> {
        FixpointResult { idb: self.idb, iterations: self.iterations }
    }
}

struct Prepared<T: CellTheory> {
    idb_names: Vec<String>,
    arities: BTreeMap<String, usize>,
    candidates: Vec<Candidate<T>>,
}

fn prepare<T: CellTheory>(
    program: &Program<T>,
    edb: &Database<T>,
    allow_negation: bool,
) -> Result<Prepared<T>> {
    program.validate(edb, allow_negation)?;
    let arities = program.arities()?;
    let idb_set = program.idb_predicates();
    let idb_names: Vec<String> = idb_set.iter().cloned().collect();
    let idb_index: BTreeMap<&str, usize> =
        idb_names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();

    let mut constants = edb.constants();
    constants.extend(program.constants());
    dedup_values(&mut constants);

    let mut candidates = Vec::new();
    for rule in &program.rules {
        let n = rule.var_count();
        'cells: for cell in T::cells(&constants, n) {
            let sample = T::cell_sample(&cell, &constants);
            let mut idb_checks = Vec::new();
            let mut edb_leaves = 0usize;
            for lit in &rule.body {
                match lit {
                    Literal::Constraint(c) => {
                        if !T::eval(c, &sample) {
                            continue 'cells;
                        }
                    }
                    Literal::Pos(a) | Literal::Neg(a) => {
                        let positive = matches!(lit, Literal::Pos(_));
                        if let Some(&idx) = idb_index.get(a.relation.as_str()) {
                            let _ = idx;
                            idb_checks.push(IdbCheck {
                                relation: a.relation.clone(),
                                cell: T::cell_project(&cell, &a.vars),
                                positive,
                            });
                        } else {
                            let rel = edb.require(&a.relation)?;
                            let point: Vec<T::Value> =
                                a.vars.iter().map(|&v| sample[v].clone()).collect();
                            if rel.satisfied_by(&point) != positive {
                                continue 'cells;
                            }
                            if positive {
                                edb_leaves += 1;
                            }
                        }
                    }
                }
            }
            candidates.push(Candidate {
                head_relation: idb_index[rule.head.relation.as_str()],
                head_cell: T::cell_project(&cell, &rule.head.vars),
                idb_checks,
                edb_leaves,
            });
        }
    }
    Ok(Prepared { idb_names, arities, candidates })
}

type CellInstance<T> = Vec<HashMap<<T as CellTheory>::Cell, (usize, usize)>>;

fn candidate_fires<T: CellTheory>(
    cand: &Candidate<T>,
    instance: &CellInstance<T>,
    idb_index: &BTreeMap<&str, usize>,
) -> Option<(usize, usize)> {
    // Returns (depth, fringe) if all checks pass: depth is the max child
    // depth, fringe counts the derivation tree's leaves — EDB body atoms
    // plus the leaves of every IDB child.
    let mut depth = 0usize;
    let mut fringe = cand.edb_leaves;
    for check in &cand.idb_checks {
        let set = &instance[idb_index[check.relation.as_str()]];
        match (set.get(&check.cell), check.positive) {
            (Some(&(d, f)), true) => {
                depth = depth.max(d);
                fringe += f;
            }
            (None, false) => {}
            (Some(_), false) | (None, true) => return None,
        }
    }
    Some((depth, fringe.max(1)))
}

fn finish<T: CellTheory>(
    prepared: &Prepared<T>,
    instance: CellInstance<T>,
    iterations: usize,
) -> CellFixpointResult<T> {
    let mut stats = DerivationStats::default();
    let mut idb = Database::new();
    for (i, name) in prepared.idb_names.iter().enumerate() {
        let mut rel = GenRelation::empty(prepared.arities[name]);
        for (cell, &(depth, fringe)) in &instance[i] {
            stats.max_depth = stats.max_depth.max(depth);
            stats.max_fringe = stats.max_fringe.max(fringe);
            stats.atoms_derived += 1;
            if let Some(t) = GenTuple::new(T::cell_formula(cell)) {
                rel.insert(t);
            }
        }
        idb.insert(name.clone(), rel);
    }
    CellFixpointResult { idb, iterations, stats }
}

fn run_rounds<T: CellTheory>(
    prepared: &Prepared<T>,
    opts: &FixpointOptions,
    executor: &Executor,
) -> Result<CellFixpointResult<T>> {
    let idb_index: BTreeMap<&str, usize> =
        prepared.idb_names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let mut instance: CellInstance<T> = vec![HashMap::new(); prepared.idb_names.len()];
    let mut iterations = 0usize;
    loop {
        if iterations >= opts.max_iterations {
            return Err(CqlError::NotClosed {
                reason: "cell fixpoint iteration budget exhausted".into(),
                iterations,
            });
        }
        cql_trace::count(cql_trace::Counter::FixpointRounds, 1);
        let round_start = std::time::Instant::now();
        let mut round_span = cql_trace::span("herbrand.round", "round");
        round_span.arg("round", iterations as u64 + 1);
        // Round-based T_P: every candidate fires against the frozen stage
        // (on the unified executor — one scoped thread per chunk; §3.3's
        // parallel-rounds observation).
        let fired = executor.map((0..prepared.candidates.len()).collect(), |i| {
            let cand = &prepared.candidates[i];
            candidate_fires(cand, &instance, &idb_index)
                .map(|(d, f)| (cand.head_relation, cand.head_cell.clone(), d + 1, f))
        });
        let derived: Vec<(usize, T::Cell, usize, usize)> = fired.into_iter().flatten().collect();
        let mut changed = false;
        for (rel_idx, cell, depth, fringe) in derived {
            if let std::collections::hash_map::Entry::Vacant(e) = instance[rel_idx].entry(cell) {
                e.insert((depth, fringe));
                changed = true;
            }
        }
        iterations += 1;
        cql_trace::record_hist(
            cql_trace::hist::FIXPOINT_ROUND_NS,
            u64::try_from(round_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        if !changed {
            return Ok(finish(prepared, instance, iterations));
        }
        let total: usize = instance.iter().map(HashMap::len).sum();
        if total > opts.max_tuples {
            return Err(CqlError::NotClosed {
                reason: format!("cell instance grew past {} atoms", opts.max_tuples),
                iterations,
            });
        }
    }
}

/// Generalized naive evaluation of a positive Datalog program over cells.
///
/// # Errors
/// Validation errors or `NotClosed` if the budget is exhausted (which for
/// cell theories indicates a budget too small — the cell space is finite).
pub fn cell_naive<T: CellTheory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<CellFixpointResult<T>> {
    let prepared = prepare(program, edb, false)?;
    run_rounds(&prepared, opts, &Executor::new(opts.threads))
}

/// Inflationary Datalog¬ over cells: negated atoms test membership in the
/// frozen current stage; complementation is free in cell space.
///
/// # Errors
/// As [`cell_naive`].
pub fn cell_inflationary<T: CellTheory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<CellFixpointResult<T>> {
    let prepared = prepare(program, edb, true)?;
    run_rounds(&prepared, opts, &Executor::new(opts.threads))
}

/// Parallel generalized naive evaluation: all candidate firings of a round
/// run concurrently on `threads` workers (§3.3). The number of rounds is
/// the maximum depth of a minimum-depth generalized derivation tree.
///
/// # Errors
/// As [`cell_naive`].
pub fn cell_parallel<T: CellTheory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
    threads: usize,
) -> Result<CellFixpointResult<T>> {
    let prepared = prepare(program, edb, true)?;
    run_rounds(&prepared, opts, &Executor::new(threads.max(1)))
}
