//! Static analysis of Datalog programs: linearity (the §3.3 NC
//! precondition), the predicate dependency graph, and stratification
//! (the classical alternative to inflationary negation that §3.3's
//! closing remark alludes to).

use crate::datalog::ast::{Literal, Program};
use crate::datalog::symbolic::{fixpoint_stratum, FixpointOptions, FixpointResult};
use cql_core::error::{CqlError, Result};
use cql_core::relation::{Database, GenRelation};
use cql_core::theory::Theory;
use std::collections::{BTreeMap, BTreeSet};

/// Strongly connected components of the predicate dependency graph
/// (edges head → body predicate), in reverse topological order
/// (dependencies first).
#[must_use]
pub fn predicate_sccs<T: Theory>(program: &Program<T>) -> Vec<BTreeSet<String>> {
    // Collect nodes and edges.
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for rule in &program.rules {
        nodes.insert(rule.head.relation.clone());
        for lit in &rule.body {
            if let Literal::Pos(a) | Literal::Neg(a) = lit {
                nodes.insert(a.relation.clone());
                edges.entry(rule.head.relation.clone()).or_default().insert(a.relation.clone());
            }
        }
    }
    // Tarjan's algorithm, iteratively indexed over a Vec.
    let names: Vec<String> = nodes.into_iter().collect();
    let index_of: BTreeMap<&str, usize> =
        names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let succ: Vec<Vec<usize>> = names
        .iter()
        .map(|n| {
            edges
                .get(n)
                .map(|targets| targets.iter().map(|t| index_of[t.as_str()]).collect())
                .unwrap_or_default()
        })
        .collect();

    let n = names.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut counter = 0usize;
    let mut out: Vec<BTreeSet<String>> = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn strongconnect(
        v: usize,
        succ: &[Vec<usize>],
        index: &mut [usize],
        low: &mut [usize],
        on_stack: &mut [bool],
        stack: &mut Vec<usize>,
        counter: &mut usize,
        out: &mut Vec<BTreeSet<String>>,
        names: &[String],
    ) {
        index[v] = *counter;
        low[v] = *counter;
        *counter += 1;
        stack.push(v);
        on_stack[v] = true;
        for &w in &succ[v] {
            if index[w] == usize::MAX {
                strongconnect(w, succ, index, low, on_stack, stack, counter, out, names);
                low[v] = low[v].min(low[w]);
            } else if on_stack[w] {
                low[v] = low[v].min(index[w]);
            }
        }
        if low[v] == index[v] {
            let mut scc = BTreeSet::new();
            while let Some(w) = stack.pop() {
                on_stack[w] = false;
                scc.insert(names[w].clone());
                if w == v {
                    break;
                }
            }
            out.push(scc);
        }
    }

    for v in 0..n {
        if index[v] == usize::MAX {
            strongconnect(
                v,
                &succ,
                &mut index,
                &mut low,
                &mut on_stack,
                &mut stack,
                &mut counter,
                &mut out,
                &names,
            );
        }
    }
    out
}

/// Is the program **piecewise linear** (Ullman–Van Gelder, the paper's
/// \[55\])? Every rule has at most one body atom mutually recursive with
/// its head. Piecewise linear programs have the (generalized) polynomial
/// fringe property, hence NC evaluation (Theorem 3.21).
#[must_use]
pub fn is_piecewise_linear<T: Theory>(program: &Program<T>) -> bool {
    let sccs = predicate_sccs(program);
    let scc_of = |name: &str| -> usize {
        sccs.iter().position(|scc| scc.contains(name)).unwrap_or(usize::MAX)
    };
    program.rules.iter().all(|rule| {
        let head_scc = scc_of(&rule.head.relation);
        let recursive_atoms = rule
            .body
            .iter()
            .filter(|lit| match lit {
                Literal::Pos(a) | Literal::Neg(a) => scc_of(&a.relation) == head_scc,
                Literal::Constraint(_) => false,
            })
            .count();
        recursive_atoms <= 1
    })
}

/// Assign each IDB predicate a stratum such that positive dependencies
/// stay within or below, and negative dependencies point strictly below.
///
/// # Errors
/// `CqlError::Malformed` if negation crosses a recursive cycle (the
/// program is not stratifiable).
pub fn stratify<T: Theory>(program: &Program<T>) -> Result<Vec<BTreeSet<String>>> {
    let idb = program.idb_predicates();
    let sccs = predicate_sccs(program);
    let scc_of = |name: &str| -> Option<usize> { sccs.iter().position(|scc| scc.contains(name)) };
    // Negation within an SCC is unstratifiable.
    for rule in &program.rules {
        let head_scc = scc_of(&rule.head.relation);
        for lit in &rule.body {
            if let Literal::Neg(a) = lit {
                if idb.contains(&a.relation) && scc_of(&a.relation) == head_scc {
                    return Err(CqlError::Malformed(format!(
                        "negation of `{}` inside its own recursive component: not stratifiable",
                        a.relation
                    )));
                }
            }
        }
    }
    // Tarjan emits SCCs dependencies-first, which is exactly stratum
    // order; keep only those containing IDB predicates.
    Ok(sccs
        .into_iter()
        .map(|scc| scc.intersection(&idb).cloned().collect::<BTreeSet<_>>())
        .filter(|scc: &BTreeSet<String>| !scc.is_empty())
        .collect())
}

/// Evaluate a stratified Datalog¬ program: strata bottom-up, each to its
/// own fixpoint, with negated atoms reading the *completed* lower strata
/// — the classical semantics, complementing the paper's inflationary one.
///
/// # Errors
/// Stratification errors, plus everything [`crate::datalog::naive`] can
/// return.
pub fn stratified<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    program.validate(edb, true)?;
    let strata = stratify(program)?;
    let arities = program.arities()?;
    let mut idb: Database<T> = Database::new();
    for name in program.idb_predicates() {
        idb.insert(name.clone(), GenRelation::empty(arities[&name]));
    }
    let mut total_iterations = 0;
    for stratum in &strata {
        // Fire only the rules whose head is in this stratum, against the
        // accumulated instance.
        let rules: Vec<_> =
            program.rules.iter().filter(|r| stratum.contains(&r.head.relation)).cloned().collect();
        let sub = Program::new(rules);
        let result = fixpoint_stratum(&sub, edb, &idb, opts)?;
        total_iterations += result.iterations;
        for (name, rel) in result.idb.iter() {
            idb.insert(name.to_string(), rel.clone());
        }
    }
    Ok(FixpointResult { idb, iterations: total_iterations })
}

#[cfg(test)]
mod tests {
    // Exercised via the dense-theory integration tests (a concrete theory
    // is needed to build programs); see crates/dense/tests/analysis.rs.
}
