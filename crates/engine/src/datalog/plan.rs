//! Per-rule multiway join planning for symbolic rule firing.
//!
//! The binary `conjoin_atom` fold pays a solver call (an interner
//! canonicalization) per *intermediate* pair that survives summary
//! pruning; with three or more relational body atoms the intermediate
//! products are the quadratic wall. The multiway path instead picks a
//! **variable elimination order** per rule (join variables first,
//! frequency-weighted, deterministic on ties), builds one
//! [`SummaryLevel`](crate::summary_index::SummaryLevel) per
//! (atom, variable) from the per-variable summary projections — interval
//! spans for the dense/poly box summaries, partition point-ranges for
//! equality, degenerate catch-all levels for the boolean masks — and
//! backtracks over atoms, leapfrog-intersecting the levels: a candidate
//! binding survives only if *every* body atom's summary admits it, and
//! the solver is called once per surviving **full** combination.
//!
//! Soundness is the summary soundness law plus interval-hull reasoning:
//! every filter only discards combinations whose conjunction is provably
//! unsatisfiable, so the multiway result equals the binary fold's (the
//! property tests in `pruning_equivalence.rs` pin this for all four
//! theories). For box summaries the per-variable hull intersection is
//! also *exact* on the hulls (Helly's theorem in one dimension: pairwise
//! interval intersection at each variable implies a common point per
//! variable), which is why the accumulated-bounds probe loses nothing
//! against the pairwise `may_intersect` checks it complements.
//!
//! `PlanCache` memoizes, per fixpoint run: the per-rule [`JoinPlan`]
//! (rule structure never changes mid-run), and the per-atom renamed
//! tuples / summaries / levels keyed by the source relation's content
//! version — so unchanged EDB relations are renamed and bucketed once
//! for the whole run, not once per round (the reuse is visible as
//! [`Counter::SummaryIndexReuses`]).

use crate::datalog::ast::{Literal, Program, Rule};
use crate::summary_index::{majority_dim, SummaryIndex, SummaryTrie};
use cql_arith::Rat;
use cql_core::relation::{GenRelation, GenTuple};
use cql_core::summary::ConstraintSummary;
use cql_core::theory::{Theory, Var};
use cql_trace::{count, span, Counter, PlanStats};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The cached, rule-structure-only part of a multiway join: the variable
/// elimination order and the order in which body atoms are probed.
/// Depends only on the rule (never on the data or the executor width),
/// so it is deterministic across runs and thread counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinPlan {
    /// Variable elimination order: every variable occurring in a
    /// relational body atom, most-shared first (ties: smaller variable
    /// index first). Join variables — those shared by several atoms —
    /// therefore lead.
    pub var_order: Vec<Var>,
    /// Body-literal indices of the relational (positive or negated)
    /// atoms, ordered by the earliest `var_order` position they cover
    /// (ties: body order). The backtracking search binds atoms in this
    /// order.
    pub atom_order: Vec<usize>,
}

impl JoinPlan {
    /// Plan one rule. Pure function of the rule's body shape.
    #[must_use]
    pub fn build<T: Theory>(rule: &Rule<T>) -> JoinPlan {
        let mut sp = span("join_plan.build", "engine");
        let n = rule.var_count();
        let mut freq = vec![0usize; n.max(1)];
        let mut rel_lits: Vec<usize> = Vec::new();
        for (li, lit) in rule.body.iter().enumerate() {
            let atom = match lit {
                Literal::Pos(a) | Literal::Neg(a) => a,
                Literal::Constraint(_) => continue,
            };
            rel_lits.push(li);
            for &v in &distinct_vars(&atom.vars) {
                freq[v] += 1;
            }
        }
        let mut var_order: Vec<Var> = (0..n).filter(|&v| freq[v] > 0).collect();
        var_order.sort_by_key(|&v| (std::cmp::Reverse(freq[v]), v));
        let mut position = vec![usize::MAX; n.max(1)];
        for (i, &v) in var_order.iter().enumerate() {
            position[v] = i;
        }
        let mut atom_order = rel_lits;
        atom_order.sort_by_key(|&li| {
            let atom = match &rule.body[li] {
                Literal::Pos(a) | Literal::Neg(a) => a,
                Literal::Constraint(_) => unreachable!("rel_lits holds relational literals"),
            };
            let earliest = atom.vars.iter().map(|&v| position[v]).min().unwrap_or(usize::MAX);
            (earliest, li)
        });
        sp.arg("var_order", var_order.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(","));
        JoinPlan { var_order, atom_order }
    }
}

fn distinct_vars(vars: &[Var]) -> Vec<Var> {
    let mut out = vars.to_vec();
    out.sort_unstable();
    out.dedup();
    out
}

/// One body atom's data for the join, renamed into the rule's variable
/// space and summarized once per (relation version, variable map). The
/// probing structures are built lazily so a cache entry serves both the
/// multiway path (levels) and the binary fold (one-dimensional index).
pub(crate) struct AtomData<T: Theory> {
    /// Tuple conjunctions renamed into rule variables.
    pub renamed: Vec<Vec<T::Constraint>>,
    /// One summary per renamed conjunction.
    pub summaries: Vec<T::Summary>,
    /// Distinct rule variables the atom binds.
    pub vars: Vec<Var>,
    trie: OnceLock<SummaryTrie>,
    index: OnceLock<Option<SummaryIndex<T>>>,
}

impl<T: Theory> AtomData<T> {
    fn build(rel: &GenRelation<T>, atom_vars: &[Var]) -> AtomData<T> {
        let renamed: Vec<Vec<T::Constraint>> =
            rel.tuples().iter().map(|u| u.rename(&|j| atom_vars[j])).collect();
        let summaries: Vec<T::Summary> = renamed.iter().map(|c| T::summary(c)).collect();
        AtomData {
            renamed,
            summaries,
            vars: distinct_vars(atom_vars),
            trie: OnceLock::new(),
            index: OnceLock::new(),
        }
    }

    /// Per-variable summary levels (multiway path).
    pub fn trie(&self) -> &SummaryTrie {
        self.trie.get_or_init(|| SummaryTrie::build(&self.summaries, &self.vars))
    }

    /// One-dimensional summary index (binary fold path); `None` when
    /// join pruning is off.
    pub fn index(&self, pruning: bool) -> Option<&SummaryIndex<T>> {
        self.index
            .get_or_init(|| {
                pruning.then(|| {
                    SummaryIndex::with_summaries(
                        self.summaries.clone(),
                        majority_dim(&self.summaries),
                    )
                })
            })
            .as_ref()
    }
}

/// Per-rule probe/survivor telemetry accumulated over a fixpoint run
/// (the source of the EXPLAIN `plans` section).
#[derive(Clone, Copy, Debug, Default)]
struct RuleTelemetry {
    probes: u64,
    survivors: u64,
}

/// Backstop against unbounded growth: IDB and delta relations get a new
/// content version every round, so their stale entries accumulate. The
/// cap bounds *each* generation of the segmented cache, so at most
/// `2 × ATOM_CACHE_MAX` entries are retained.
const ATOM_CACHE_MAX: usize = 512;

/// Per-fixpoint-run cache of join plans and per-atom join structures.
///
/// Plans are keyed by rule index (rule structure is immutable for a
/// run); atom data is keyed by the source relation's content version
/// plus the atom's variable map — a [`GenRelation::version`] is renewed
/// on every mutation, so version equality proves the cached renamed
/// tuples and levels are still exact.
///
/// Atom entries are held in two generations (`hot` / `cold`) with
/// segmented eviction: overflow rotates hot into cold (dropping the old
/// cold generation) instead of clearing everything, and a cold hit
/// promotes the entry back to hot. A steadily re-probed working set
/// therefore survives unbounded churn from one-shot versions — under
/// the previous clear-on-overflow policy a long-lived runtime dropped
/// every hot plan each time the cap was reached.
pub(crate) struct PlanCache<T: Theory> {
    plans: Vec<Option<Arc<JoinPlan>>>,
    telemetry: Vec<RuleTelemetry>,
    hot: HashMap<(u64, Vec<Var>), Arc<AtomData<T>>>,
    cold: HashMap<(u64, Vec<Var>), Arc<AtomData<T>>>,
}

impl<T: Theory> PlanCache<T> {
    pub fn new(rules: usize) -> PlanCache<T> {
        PlanCache {
            plans: vec![None; rules],
            telemetry: vec![RuleTelemetry::default(); rules],
            hot: HashMap::new(),
            cold: HashMap::new(),
        }
    }

    /// The rule's plan, building it on first use. Reuse counts
    /// [`Counter::PlanCacheHits`].
    pub fn plan(&mut self, rule_idx: usize, rule: &Rule<T>) -> Arc<JoinPlan> {
        if let Some(plan) = &self.plans[rule_idx] {
            count(Counter::PlanCacheHits, 1);
            return Arc::clone(plan);
        }
        let plan = Arc::new(JoinPlan::build(rule));
        self.plans[rule_idx] = Some(Arc::clone(&plan));
        plan
    }

    /// The atom's renamed tuples / summaries / levels, rebuilt only when
    /// the source relation's content changed. Reuse counts
    /// [`Counter::SummaryIndexReuses`].
    pub fn atom_data(&mut self, rel: &GenRelation<T>, atom_vars: &[Var]) -> Arc<AtomData<T>> {
        let key = (rel.version(), atom_vars.to_vec());
        if let Some(data) = self.hot.get(&key) {
            // Version equality must prove content equality: a mutation
            // path that forgot to bump the version would serve a stale
            // trie here. Tuple count is a cheap necessary condition.
            debug_assert_eq!(
                rel.len(),
                data.renamed.len(),
                "GenRelation content changed without a version bump"
            );
            count(Counter::SummaryIndexReuses, 1);
            return Arc::clone(data);
        }
        let data = match self.cold.remove(&key) {
            Some(data) => {
                debug_assert_eq!(rel.len(), data.renamed.len());
                count(Counter::SummaryIndexReuses, 1);
                data
            }
            None => Arc::new(AtomData::build(rel, atom_vars)),
        };
        if self.hot.len() >= ATOM_CACHE_MAX {
            // Segmented eviction: the hot generation becomes cold (the old
            // cold generation is dropped); live entries are promoted back
            // out of cold on their next hit.
            self.cold = std::mem::take(&mut self.hot);
        }
        self.hot.insert(key, Arc::clone(&data));
        data
    }

    /// Fold one firing's probe/survivor counts into the rule's totals.
    pub fn record(&mut self, rule_idx: usize, probes: u64, survivors: u64) {
        self.telemetry[rule_idx].probes += probes;
        self.telemetry[rule_idx].survivors += survivors;
    }

    /// EXPLAIN rows for every rule that was multiway-planned this run.
    pub fn plan_stats(&self, program: &Program<T>) -> Vec<PlanStats> {
        self.plans
            .iter()
            .enumerate()
            .filter_map(|(i, plan)| {
                let plan = plan.as_ref()?;
                Some(PlanStats {
                    rule: program.rules[i].to_string(),
                    var_order: plan.var_order.iter().map(|&v| v as u64).collect(),
                    atoms: plan.atom_order.len() as u64,
                    probes: self.telemetry[i].probes,
                    survivors: self.telemetry[i].survivors,
                })
            })
            .collect()
    }
}

/// Closed-interval intersection of accumulated per-variable bounds with
/// one summary's ranged dimensions; `false` means the candidate is
/// jointly infeasible with the bounds and must be rejected.
fn tighten<S: ConstraintSummary>(bounds: &mut [Option<(Rat, Rat)>], summary: &S) -> bool {
    for v in summary.ranged_dims() {
        if v >= bounds.len() {
            continue;
        }
        let Some((rlo, rhi)) = summary.range(v) else { continue };
        bounds[v] = match bounds[v].take() {
            None => Some((rlo, rhi)),
            Some((lo, hi)) => {
                let lo = if rlo > lo { rlo } else { lo };
                let hi = if rhi < hi { rhi } else { hi };
                if lo > hi {
                    return false;
                }
                Some((lo, hi))
            }
        };
    }
    true
}

/// Ascending-sorted intersection of two candidate id lists.
fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// The backtracking state of one multiway join execution.
struct Search<'a, T: Theory> {
    atoms: &'a [Arc<AtomData<T>>],
    base: &'a GenTuple<T>,
    base_summary: T::Summary,
    chosen: Vec<usize>,
    out: Vec<Vec<T::Constraint>>,
    probes: u64,
}

impl<T: Theory> Search<'_, T> {
    fn descend(&mut self, depth: usize, bounds: &[Option<(Rat, Rat)>]) {
        if depth == self.atoms.len() {
            let mut conj = self.base.constraints().to_vec();
            for (atom, &i) in self.atoms.iter().zip(&self.chosen) {
                conj.extend_from_slice(&atom.renamed[i]);
            }
            self.out.push(conj);
            return;
        }
        let atom = &self.atoms[depth];
        // Leapfrog step: intersect the candidate sets of every level the
        // accumulated bounds can probe. Candidates are kept in ascending
        // tuple order so enumeration is deterministic regardless of
        // bucket layout.
        let mut cand: Option<Vec<usize>> = None;
        for &v in &atom.vars {
            if bounds[v].is_none() {
                continue;
            }
            let Some(level) = atom.trie().level(v) else { continue };
            let mut ids = level.candidates(bounds[v].clone());
            ids.sort_unstable();
            cand = Some(match cand {
                None => ids,
                Some(prev) => intersect_sorted(&prev, &ids),
            });
            if cand.as_ref().is_some_and(Vec::is_empty) {
                return;
            }
        }
        let cand = cand.unwrap_or_else(|| (0..atom.renamed.len()).collect());
        for i in cand {
            self.probes += 1;
            let s = &atom.summaries[i];
            if !s.may_intersect(&self.base_summary) {
                continue;
            }
            if !self
                .chosen
                .iter()
                .enumerate()
                .all(|(d, &j)| s.may_intersect(&self.atoms[d].summaries[j]))
            {
                continue;
            }
            let mut next_bounds = bounds.to_vec();
            if !tighten(&mut next_bounds, s) {
                continue;
            }
            self.chosen.push(i);
            self.descend(depth + 1, &next_bounds);
            self.chosen.pop();
        }
    }
}

/// Execute a multiway join: backtrack over `atoms` (already in plan
/// order), handing the solver one conjunction per surviving full
/// combination. Returns the surviving raw conjunctions plus the probe
/// and survivor counts. The summary search itself is serial (it is
/// cheap interval arithmetic); the surviving canonicalizations — the
/// actual solver calls — are batched through the engine's executor by
/// the caller.
pub(crate) fn multiway_join<T: Theory>(
    atoms: &[Arc<AtomData<T>>],
    base: &GenTuple<T>,
    var_count: usize,
) -> (Vec<Vec<T::Constraint>>, u64, u64) {
    let mut sp = span("multiway.join", "engine");
    let base_summary = T::summary(base.constraints());
    let mut bounds: Vec<Option<(Rat, Rat)>> = vec![None; var_count.max(1)];
    if !tighten(&mut bounds, &base_summary) {
        return (Vec::new(), 0, 0);
    }
    let mut search = Search {
        atoms,
        base,
        base_summary,
        chosen: Vec::with_capacity(atoms.len()),
        out: Vec::new(),
        probes: 0,
    };
    search.descend(0, &bounds);
    let survivors = search.out.len() as u64;
    sp.arg("probes", search.probes);
    sp.arg("survivors", survivors);
    (search.out, search.probes, survivors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datalog::ast::Atom;
    use cql_dense::Dense;

    /// T(x0,x3) ← E(x0,x1), E(x1,x2), E(x2,x3): the E17 path-join shape.
    fn path_rule() -> Rule<Dense> {
        Rule::new(
            Atom::new("T", vec![0, 3]),
            vec![
                Literal::Pos(Atom::new("E", vec![0, 1])),
                Literal::Pos(Atom::new("E", vec![1, 2])),
                Literal::Pos(Atom::new("E", vec![2, 3])),
            ],
        )
    }

    #[test]
    fn plan_puts_join_variables_first_deterministically() {
        let plan = JoinPlan::build(&path_rule());
        // x1 and x2 occur in two atoms each; x0 and x3 in one. Ties break
        // toward the smaller variable index.
        assert_eq!(plan.var_order, vec![1, 2, 0, 3]);
        assert_eq!(plan.atom_order, vec![0, 1, 2]);
    }

    #[test]
    fn plan_is_identical_across_thread_counts() {
        // Planning is a pure function of the rule: rebuilding it from
        // any number of concurrent threads (the executor-width analogue)
        // yields the identical order, so EXPLAIN output is stable across
        // CQL_ENGINE_THREADS settings.
        let baseline = JoinPlan::build(&path_rule());
        let plans: Vec<JoinPlan> = std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..8).map(|_| s.spawn(|| JoinPlan::build(&path_rule()))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for plan in plans {
            assert_eq!(plan, baseline);
        }
    }

    #[test]
    fn constraint_literals_do_not_join() {
        use cql_dense::DenseConstraint;
        let rule: Rule<Dense> = Rule::new(
            Atom::new("T", vec![0, 1]),
            vec![
                Literal::Constraint(DenseConstraint::lt(0, 1)),
                Literal::Pos(Atom::new("E", vec![0, 1])),
            ],
        );
        let plan = JoinPlan::build(&rule);
        assert_eq!(plan.atom_order, vec![1]);
        assert_eq!(plan.var_order, vec![0, 1]);
    }

    #[test]
    fn sorted_intersection_is_exact() {
        assert_eq!(intersect_sorted(&[0, 2, 4, 6], &[1, 2, 3, 6]), vec![2, 6]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<usize>::new());
    }

    #[test]
    fn atom_cache_never_serves_stale_data_across_mutations() {
        use cql_core::relation::{GenRelation, GenTuple};
        use cql_dense::DenseConstraint;
        let tup = |a: i64, b: i64| {
            GenTuple::<Dense>::new(vec![
                DenseConstraint::eq_const(0, a),
                DenseConstraint::eq_const(1, b),
            ])
            .unwrap()
        };
        let mut cache: PlanCache<Dense> = PlanCache::new(0);
        let mut rel: GenRelation<Dense> = GenRelation::empty(2);
        rel.insert(tup(1, 2));
        let vars = vec![0, 1];
        let first = cache.atom_data(&rel, &vars);
        assert_eq!(first.renamed.len(), 1);
        // Every mutation path (insert, eviction, removal) must renew the
        // version, so the cache key changes and fresh data is built — a
        // stale SummaryTrie would echo the old tuple count.
        rel.insert(tup(3, 4));
        let second = cache.atom_data(&rel, &vars);
        assert_eq!(second.renamed.len(), 2);
        assert!(rel.remove(&tup(1, 2)));
        let third = cache.atom_data(&rel, &vars);
        assert_eq!(third.renamed.len(), 1);
        // An unchanged relation reuses the cached entry (same Arc).
        let fourth = cache.atom_data(&rel, &vars);
        assert!(Arc::ptr_eq(&third, &fourth));
    }

    #[test]
    fn hot_working_set_survives_cache_churn() {
        use cql_core::relation::{GenRelation, GenTuple};
        use cql_dense::DenseConstraint;
        let tup = |a: i64, b: i64| {
            GenTuple::<Dense>::new(vec![
                DenseConstraint::eq_const(0, a),
                DenseConstraint::eq_const(1, b),
            ])
            .unwrap()
        };
        let vars = vec![0, 1];
        let mut cache: PlanCache<Dense> = PlanCache::new(0);
        // A stable working set of relations, re-probed every round — the
        // EDB atoms of a long-lived runtime.
        let stable: Vec<GenRelation<Dense>> = (0..4)
            .map(|i| {
                let mut r = GenRelation::empty(2);
                r.insert(tup(i, i + 1));
                r
            })
            .collect();
        let first: Vec<_> = stable.iter().map(|r| cache.atom_data(r, &vars)).collect();
        // A churning relation whose version changes every round — the
        // delta/IDB atoms that flood the cache with one-shot keys. Run
        // well past the cap so several generation rotations happen.
        let mut churner: GenRelation<Dense> = GenRelation::empty(2);
        let mut hits = 0usize;
        let mut probes = 0usize;
        for round in 0..(3 * ATOM_CACHE_MAX as i64) {
            churner.insert(tup(round + 100, round + 101));
            cache.atom_data(&churner, &vars);
            for (r, old) in stable.iter().zip(&first) {
                probes += 1;
                if Arc::ptr_eq(&cache.atom_data(r, &vars), old) {
                    hits += 1;
                }
            }
        }
        // Segmented eviction pins a 100% hit rate for the working set:
        // rotation demotes it to the cold generation at worst, and the
        // next probe promotes it back. (The previous clear-on-overflow
        // policy rebuilt every entry each time the cap was reached.)
        assert_eq!(hits, probes, "working set must survive churn without rebuilds");
    }
}
