//! Incremental view maintenance: a materialized Datalog fixpoint kept
//! consistent under single-tuple EDB inserts and retracts.
//!
//! Every batch engine in [`super::symbolic`] pays a full fixpoint from
//! scratch; a [`MaterializedView`] pays once at construction and then
//! per-update work proportional to the *delta cone* — the derivations
//! that actually mention the changed tuple. The algorithm is a
//! counting/DRed hybrid adapted to generalized tuples:
//!
//! * **Support counts.** Per IDB predicate the view keeps a *derivation
//!   store* — a [`SubsumptionMode::DedupOnly`] relation holding every
//!   distinct derived tuple — plus a count per tuple of how many
//!   derivations currently produce it. A derivation is one (rule,
//!   satisfiable body combination, QE disjunct), enumerated by the
//!   multiplicity-preserving `fire_rule_counted` of the symbolic module.
//!   Storing *all* derived tuples (not just the subsumption-maximal
//!   antichain) is what makes counting subsumption-aware: a derivation
//!   whose premise is subsumed by a surviving tuple still counts,
//!   because the subsumed premise is still in the store that rules fire
//!   against. The exposed view is rebuilt lazily as the maximal
//!   antichain of the store — identical to the batch engines' result,
//!   since tuples derived from subsumed premises are entailed by the
//!   tuples derived from their subsuming premises (the same
//!   monotonicity that makes naive and seminaive byte-identical).
//!
//! * **Insertion** runs delta rounds with the inclusion–exclusion
//!   discipline: in each round, one body position reads the delta,
//!   positions before it read the post-delta stores, positions after it
//!   read the pre-delta snapshot — so every derivation involving at
//!   least one delta tuple is counted exactly once. Join plans and
//!   per-atom summary tries come from the view's long-lived plan cache
//!   (`datalog/plan.rs`), keyed by [`GenRelation::version`], so
//!   unchanged relations are renamed and bucketed once across updates.
//!
//! * **Retraction** is DRed-style: an *over-deletion* phase removes the
//!   whole cone (every tuple with any derivation mentioning a deleted
//!   tuple, regardless of its residual count — this is what keeps
//!   cyclically-supported tuples from surviving on counts that only
//!   other deleted tuples justify), decrementing counts with the same
//!   inclusion–exclusion enumeration; then a *re-derivation* phase
//!   re-inserts over-deleted tuples whose residual count is positive
//!   (they kept derivations from never-deleted premises) and propagates
//!   them as ordinary insertions.
//!
//! Updates count [`Counter::DeltaRounds`], [`Counter::Rederivations`]
//! and [`Counter::SupportAdjust`], run under `view.insert` /
//! `view.retract` / `view.delta_round` / `view.rederive` spans, and
//! each returns an [`UpdateStats`] EXPLAIN row (also kept in an
//! internal log for report assembly).
//!
//! Restricted to positive programs: inflationary negation is
//! non-monotone, so a retraction could *grow* the view and support
//! counting does not apply.

use crate::datalog::ast::{Literal, Program, Rule};
use crate::datalog::plan::PlanCache;
use crate::datalog::symbolic::{fire_rule_counted, FixpointOptions};
use crate::Engine;
use cql_core::error::{CqlError, Result};
use cql_core::policy::{EnginePolicy, SubsumptionMode};
use cql_core::relation::{Database, GenRelation, GenTuple};
use cql_core::theory::Theory;
use cql_trace::{count, hist, record_hist, span, Counter, MetricsScope, UpdateStats};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::time::Instant;

/// Per-predicate batches of tuples entering (or leaving) the stores,
/// in deterministic predicate order and stable discovery order.
type Delta<T> = BTreeMap<String, Vec<GenTuple<T>>>;

/// A Datalog program's IDB, materialized once and maintained under
/// [`insert`](MaterializedView::insert) /
/// [`retract`](MaterializedView::retract) without re-running the
/// fixpoint. See the module docs for the algorithm.
pub struct MaterializedView<T: Theory> {
    program: Program<T>,
    opts: FixpointOptions,
    engine: Engine<T>,
    arities: BTreeMap<String, usize>,
    idb_preds: BTreeSet<String>,
    /// Derivation stores: every asserted EDB tuple / every distinct
    /// derived IDB tuple, dedup-only (no subsumption compression — the
    /// stores are support-count keys, not the exposed result).
    stores: BTreeMap<String, GenRelation<T>>,
    /// Per IDB predicate: derivation count per stored tuple.
    counts: BTreeMap<String, HashMap<GenTuple<T>, u64>>,
    cache: PlanCache<T>,
    /// Lazily rebuilt antichain view of the IDB stores.
    view: Database<T>,
    dirty: BTreeSet<String>,
    /// Per dirty IDB predicate: the exact store mutations (`true` =
    /// inserted, `false` = removed) since the last [`current`] call, in
    /// order. When the store is an antichain (no derived tuple subsumes
    /// another — the common case for point-style workloads), `current`
    /// replays this journal onto the exposed view in place instead of
    /// rebuilding the predicate from scratch; shadowing is detected by
    /// cardinality checks and falls back to the rebuild.
    ///
    /// [`current`]: MaterializedView::current
    journal: BTreeMap<String, Vec<(bool, GenTuple<T>)>>,
    log: Vec<UpdateStats>,
}

impl<T: Theory> MaterializedView<T> {
    /// Materialize `program` over `edb` (the initial fixpoint runs as
    /// one insertion propagation of every EDB tuple).
    ///
    /// # Errors
    /// Validation errors (the program must be positive), theory
    /// `Unsupported` errors, or [`CqlError::NotClosed`] when the
    /// options' budget is exhausted.
    pub fn new(
        program: Program<T>,
        edb: &Database<T>,
        opts: FixpointOptions,
    ) -> Result<MaterializedView<T>> {
        program.validate(edb, false)?;
        let engine = opts.engine();
        let arities = program.arities()?;
        let idb_preds = program.idb_predicates();
        let store_policy = store_policy(&opts);
        let mut stores = BTreeMap::new();
        let mut counts = BTreeMap::new();
        for (name, &arity) in &arities {
            stores.insert(name.clone(), GenRelation::with_policy(arity, store_policy));
            if idb_preds.contains(name) {
                counts.insert(name.clone(), HashMap::new());
            }
        }
        let cache = PlanCache::new(program.rules.len());
        let mut view = MaterializedView {
            dirty: idb_preds.clone(),
            program,
            opts,
            engine,
            arities,
            idb_preds,
            stores,
            counts,
            cache,
            view: Database::new(),
            journal: BTreeMap::new(),
            log: Vec::new(),
        };
        let mut init: Delta<T> = BTreeMap::new();
        view.seed_constant_rules(&mut init)?;
        for (name, rel) in edb.iter() {
            if view.stores.contains_key(name) && !view.idb_preds.contains(name) {
                let batch = init.entry(name.to_string()).or_default();
                for t in rel.tuples() {
                    if !batch.contains(t) {
                        batch.push(t.clone());
                    }
                }
            }
        }
        view.propagate_insertions(init)?;
        Ok(view)
    }

    /// Fire rules whose bodies have no relational atoms exactly once:
    /// no delta ever re-fires them, so their derivations are banked at
    /// construction and their outputs join the initial delta.
    fn seed_constant_rules(&mut self, init: &mut Delta<T>) -> Result<()> {
        let MaterializedView { program, engine, cache, counts, .. } = self;
        let mut pending: BTreeMap<String, HashSet<GenTuple<T>>> = BTreeMap::new();
        for (ri, rule) in program.rules.iter().enumerate() {
            if rule.body.iter().any(|l| !matches!(l, Literal::Constraint(_))) {
                continue;
            }
            let rels: Vec<Option<&GenRelation<T>>> = vec![None; rule.body.len()];
            let fired = fire_rule_counted(engine, ri, rule, &rels, cache)?;
            let head = &rule.head.relation;
            for t in fired {
                count(Counter::SupportAdjust, 1);
                *counts.get_mut(head).expect("head is IDB").entry(t.clone()).or_insert(0) += 1;
                if pending.entry(head.clone()).or_default().insert(t.clone()) {
                    init.entry(head.clone()).or_default().push(t);
                }
            }
        }
        Ok(())
    }

    /// Assert one EDB tuple. A tuple already asserted is a no-op (set
    /// semantics). Returns the per-update EXPLAIN row.
    ///
    /// # Errors
    /// Unknown or non-EDB relation, arity overflow, or budget
    /// exhaustion mid-propagation (which leaves the view unusable).
    pub fn insert(&mut self, relation: &str, tuple: GenTuple<T>) -> Result<UpdateStats> {
        self.require_edb(relation, &tuple)?;
        let scope = MetricsScope::enter("view.update");
        let started = Instant::now();
        {
            let mut sp = span("view.insert", "engine");
            sp.arg("relation", relation);
            if !self.stores[relation].contains(&tuple) {
                let mut delta = BTreeMap::new();
                delta.insert(relation.to_string(), vec![tuple]);
                self.propagate_insertions(delta)?;
            }
        }
        Ok(self.finish_update("insert", relation, &scope, started))
    }

    /// Retract one previously asserted EDB tuple (exact canonical
    /// match). Returns the per-update EXPLAIN row.
    ///
    /// # Errors
    /// Unknown or non-EDB relation, a tuple that is not currently
    /// asserted, or budget exhaustion mid-propagation.
    pub fn retract(&mut self, relation: &str, tuple: &GenTuple<T>) -> Result<UpdateStats> {
        self.require_edb(relation, tuple)?;
        if !self.stores[relation].contains(tuple) {
            return Err(CqlError::Malformed(format!(
                "retract of a tuple not currently asserted in `{relation}`"
            )));
        }
        let scope = MetricsScope::enter("view.update");
        let started = Instant::now();
        {
            let mut sp = span("view.retract", "engine");
            sp.arg("relation", relation);
            self.propagate_retraction(relation, tuple.clone())?;
        }
        Ok(self.finish_update("retract", relation, &scope, started))
    }

    /// The maintained IDB, as subsumption-compressed relations (the
    /// same representation the batch engines produce). Touches only the
    /// predicates whose stores changed since the last call, and for
    /// those replays the exact store delta onto the exposed relation in
    /// place when that is provably equivalent to a rebuild — which it
    /// is exactly when nothing is shadowed by subsumption, i.e. the
    /// exposed relation and the dedup store hold the same tuple set.
    /// Each replayed event verifies that equality is preserved (an
    /// insert must add exactly one tuple, a removal must find its
    /// tuple, and the final cardinalities must agree); any violation
    /// falls back to the full rebuild. So per-publish cost is
    /// O(|delta|) subsumption inserts on antichain workloads instead of
    /// O(|store|), and byte-identical either way.
    pub fn current(&mut self) -> &Database<T> {
        let dirty: Vec<String> = std::mem::take(&mut self.dirty).into_iter().collect();
        for name in dirty {
            let events = self.journal.remove(&name).unwrap_or_default();
            let store = &self.stores[&name];
            let patched = self.view.get(&name).cloned().and_then(|mut rel| {
                for (added, t) in &events {
                    if *added {
                        let before = rel.len();
                        // A rejected or evicting insert means the store
                        // is not an antichain: stop patching.
                        if !rel.insert(t.clone()) || rel.len() != before + 1 {
                            return None;
                        }
                    } else if !rel.remove(t) {
                        // Removed tuple was shadowed out of the view.
                        return None;
                    }
                }
                (rel.len() == store.len()).then_some(rel)
            });
            let rel = patched.unwrap_or_else(|| {
                let mut rel = self.engine.relation(self.arities[&name]);
                for t in store.tuples() {
                    rel.insert(t.clone());
                }
                rel
            });
            self.view.insert(name, rel);
        }
        &self.view
    }

    /// Number of derivations currently supporting `tuple` (0 when the
    /// tuple is not derived, or the predicate is not IDB).
    #[must_use]
    pub fn support_count(&self, relation: &str, tuple: &GenTuple<T>) -> u64 {
        self.counts.get(relation).and_then(|m| m.get(tuple)).copied().unwrap_or(0)
    }

    /// The asserted EDB relations (the derivation stores of every
    /// non-IDB predicate), in name order. Together with
    /// [`current`](MaterializedView::current) this is the full database
    /// at the view's present state — the snapshot store publishes both.
    pub fn edb(&self) -> impl Iterator<Item = (&str, &GenRelation<T>)> {
        self.stores
            .iter()
            .filter(|(name, _)| !self.idb_preds.contains(name.as_str()))
            .map(|(name, rel)| (name.as_str(), rel))
    }

    /// The maintained program.
    #[must_use]
    pub fn program(&self) -> &Program<T> {
        &self.program
    }

    /// EXPLAIN rows of every update applied so far, in order.
    #[must_use]
    pub fn updates(&self) -> &[UpdateStats] {
        &self.log
    }

    /// Drain the per-update EXPLAIN log (for report assembly).
    pub fn take_updates(&mut self) -> Vec<UpdateStats> {
        std::mem::take(&mut self.log)
    }

    fn require_edb(&self, relation: &str, tuple: &GenTuple<T>) -> Result<()> {
        let Some(&arity) = self.arities.get(relation) else {
            return Err(CqlError::UnknownRelation(relation.to_string()));
        };
        if self.idb_preds.contains(relation) {
            return Err(CqlError::Malformed(format!(
                "`{relation}` is an IDB predicate; only EDB relations accept updates"
            )));
        }
        if tuple.max_var_bound() > arity {
            return Err(CqlError::ArityMismatch {
                relation: relation.to_string(),
                expected: arity,
                found: tuple.max_var_bound(),
            });
        }
        Ok(())
    }

    fn finish_update(
        &mut self,
        op: &str,
        relation: &str,
        scope: &MetricsScope,
        started: Instant,
    ) -> UpdateStats {
        let snap = scope.snapshot();
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Recorded inside the update scope; merge-on-drop folds the
        // sample into whatever scope encloses the update.
        record_hist(hist::VIEW_UPDATE_NS, wall_ns);
        let stats = UpdateStats {
            op: op.to_string(),
            relation: relation.to_string(),
            delta_rounds: snap.get(Counter::DeltaRounds),
            rederivations: snap.get(Counter::Rederivations),
            support_adjust: snap.get(Counter::SupportAdjust),
            qe_calls: snap.get(Counter::QeCalls),
            entailment_checks: snap.get(Counter::EntailmentChecks),
            wall_ns,
        };
        self.log.push(stats.clone());
        stats
    }

    /// Positive phase: repeat delta rounds until no new tuple is
    /// derived. `delta` tuples must not yet be in the stores; each
    /// round adds them, then fires every (rule, delta position) with
    /// the inclusion–exclusion bindings of [`bind_positions`].
    fn propagate_insertions(&mut self, mut delta: Delta<T>) -> Result<()> {
        let store_policy = store_policy(&self.opts);
        let MaterializedView {
            program,
            opts,
            engine,
            arities,
            idb_preds,
            stores,
            counts,
            cache,
            dirty,
            journal,
            ..
        } = self;
        let mut rounds = 0usize;
        while !delta.is_empty() {
            check_budget(stores, rounds, opts)?;
            rounds += 1;
            count(Counter::DeltaRounds, 1);
            let mut round_span = span("view.delta_round", "round");
            round_span.arg("delta", delta.values().map(Vec::len).sum::<usize>() as u64);
            let mut old: BTreeMap<String, GenRelation<T>> = BTreeMap::new();
            let mut drels: BTreeMap<String, GenRelation<T>> = BTreeMap::new();
            for (name, tuples) in &delta {
                old.insert(name.clone(), stores[name].clone());
                let mut drel = GenRelation::with_policy(arities[name], store_policy);
                let store = stores.get_mut(name).expect("known predicate");
                for t in tuples {
                    let added = store.insert(t.clone());
                    debug_assert!(added, "insertion delta tuples are new by construction");
                    if idb_preds.contains(name) {
                        journal.entry(name.clone()).or_default().push((true, t.clone()));
                    }
                    drel.insert(t.clone());
                }
                drels.insert(name.clone(), drel);
            }
            let mut next: Delta<T> = BTreeMap::new();
            let mut pending: BTreeMap<String, HashSet<GenTuple<T>>> = BTreeMap::new();
            for (ri, rule) in program.rules.iter().enumerate() {
                for (li, lit) in rule.body.iter().enumerate() {
                    let Literal::Pos(a) = lit else { continue };
                    let Some(drel) = drels.get(&a.relation) else { continue };
                    let rels = bind_positions(rule, li, drel, stores, &old);
                    let fired = fire_rule_counted(engine, ri, rule, &rels, cache)?;
                    let head = &rule.head.relation;
                    for t in fired {
                        count(Counter::SupportAdjust, 1);
                        *counts
                            .get_mut(head)
                            .expect("head is IDB")
                            .entry(t.clone())
                            .or_insert(0) += 1;
                        if !stores[head].contains(&t)
                            && pending.entry(head.clone()).or_default().insert(t.clone())
                        {
                            dirty.insert(head.clone());
                            next.entry(head.clone()).or_default().push(t);
                        }
                    }
                }
            }
            delta = next;
        }
        Ok(())
    }

    /// Negative phase (DRed): over-delete the retracted tuple's cone,
    /// decrementing support counts with the same inclusion–exclusion
    /// enumeration as insertion, then re-derive over-deleted tuples
    /// whose residual count shows surviving support.
    fn propagate_retraction(&mut self, relation: &str, tuple: GenTuple<T>) -> Result<()> {
        let store_policy = store_policy(&self.opts);
        let mut reinserts: Delta<T> = BTreeMap::new();
        {
            let MaterializedView {
                program,
                opts,
                engine,
                arities,
                idb_preds,
                stores,
                counts,
                cache,
                dirty,
                journal,
                ..
            } = self;
            // Over-deleted IDB tuples, in discovery order (sets for the
            // membership tests, vectors to keep propagation and
            // re-derivation deterministic).
            let mut deleted: Delta<T> = BTreeMap::new();
            let mut deleted_set: BTreeMap<String, HashSet<GenTuple<T>>> = BTreeMap::new();
            let mut d: Delta<T> = BTreeMap::new();
            d.insert(relation.to_string(), vec![tuple]);
            let mut rounds = 0usize;
            while !d.is_empty() {
                check_budget(stores, rounds, opts)?;
                rounds += 1;
                count(Counter::DeltaRounds, 1);
                let mut round_span = span("view.delta_round", "round");
                round_span.arg("deleted", d.values().map(Vec::len).sum::<usize>() as u64);
                let mut old: BTreeMap<String, GenRelation<T>> = BTreeMap::new();
                let mut drels: BTreeMap<String, GenRelation<T>> = BTreeMap::new();
                for (name, tuples) in &d {
                    old.insert(name.clone(), stores[name].clone());
                    let mut drel = GenRelation::with_policy(arities[name], store_policy);
                    let store = stores.get_mut(name).expect("known predicate");
                    for t in tuples {
                        let removed = store.remove(t);
                        debug_assert!(removed, "deletion delta tuples are stored");
                        if idb_preds.contains(name) {
                            journal.entry(name.clone()).or_default().push((false, t.clone()));
                        }
                        drel.insert(t.clone());
                    }
                    drels.insert(name.clone(), drel);
                }
                let mut next: Delta<T> = BTreeMap::new();
                for (ri, rule) in program.rules.iter().enumerate() {
                    for (li, lit) in rule.body.iter().enumerate() {
                        let Literal::Pos(a) = lit else { continue };
                        let Some(drel) = drels.get(&a.relation) else { continue };
                        let rels = bind_positions(rule, li, drel, stores, &old);
                        let fired = fire_rule_counted(engine, ri, rule, &rels, cache)?;
                        let head = &rule.head.relation;
                        for t in fired {
                            count(Counter::SupportAdjust, 1);
                            let c = counts
                                .get_mut(head)
                                .expect("head is IDB")
                                .entry(t.clone())
                                .or_insert(0);
                            debug_assert!(*c > 0, "support count underflow");
                            *c = c.saturating_sub(1);
                            // Over-delete regardless of the residual
                            // count: a positive residual may rest only
                            // on tuples this cascade deletes later
                            // (cyclic support), so survival is decided
                            // by the re-derivation phase.
                            if stores[head].contains(&t)
                                && deleted_set.entry(head.clone()).or_default().insert(t.clone())
                            {
                                dirty.insert(head.clone());
                                next.entry(head.clone()).or_default().push(t);
                            }
                        }
                    }
                }
                for (name, tuples) in &next {
                    deleted.entry(name.clone()).or_default().extend(tuples.iter().cloned());
                }
                d = next;
            }
            // Residual count > 0 means derivations from never-deleted
            // premises survive: the tuple is still in the view.
            for (name, tuples) in deleted {
                let table = counts.get_mut(&name).expect("head is IDB");
                for t in tuples {
                    if table.get(&t).copied().unwrap_or(0) > 0 {
                        count(Counter::Rederivations, 1);
                        reinserts.entry(name.clone()).or_default().push(t);
                    } else {
                        table.remove(&t);
                    }
                }
            }
        }
        if !reinserts.is_empty() {
            let _sp = span("view.rederive", "engine");
            self.propagate_insertions(reinserts)?;
        }
        Ok(())
    }
}

/// The derivation stores' policy: the caller's engine policy with
/// subsumption compression off (stores key support counts by exact
/// derived tuple, so nothing may be evicted or rejected as subsumed).
fn store_policy(opts: &FixpointOptions) -> EnginePolicy {
    EnginePolicy { subsumption: SubsumptionMode::DedupOnly, ..opts.policy }
}

/// Bind one firing's relations: position `delta_at` reads the delta,
/// positions before it read `new` (this round's change applied),
/// positions after it read `old` where the round changed the relation
/// and `new` otherwise. Counts every derivation involving at least one
/// delta tuple exactly once across the round's firings.
fn bind_positions<'a, T: Theory>(
    rule: &Rule<T>,
    delta_at: usize,
    drel: &'a GenRelation<T>,
    new: &'a BTreeMap<String, GenRelation<T>>,
    old: &'a BTreeMap<String, GenRelation<T>>,
) -> Vec<Option<&'a GenRelation<T>>> {
    rule.body
        .iter()
        .enumerate()
        .map(|(lj, lit)| match lit {
            Literal::Pos(a) => Some(if lj == delta_at {
                drel
            } else if lj < delta_at {
                &new[&a.relation]
            } else {
                old.get(&a.relation).unwrap_or_else(|| &new[&a.relation])
            }),
            Literal::Neg(_) | Literal::Constraint(_) => None,
        })
        .collect()
}

fn check_budget<T: Theory>(
    stores: &BTreeMap<String, GenRelation<T>>,
    rounds: usize,
    opts: &FixpointOptions,
) -> Result<()> {
    if rounds >= opts.max_iterations {
        return Err(CqlError::NotClosed {
            reason: "incremental propagation exceeded the iteration budget".into(),
            iterations: rounds,
        });
    }
    let size: usize = stores.values().map(GenRelation::len).sum();
    if size > opts.max_tuples {
        return Err(CqlError::NotClosed {
            reason: format!("derivation stores grew past {} tuples", opts.max_tuples),
            iterations: rounds,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datalog::ast::Atom;
    use crate::datalog::symbolic::seminaive;
    use cql_dense::{Dense, DenseConstraint};

    fn tc_program() -> Program<Dense> {
        Program::new(vec![
            Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
            Rule::new(
                Atom::new("T", vec![0, 1]),
                vec![
                    Literal::Pos(Atom::new("T", vec![0, 2])),
                    Literal::Pos(Atom::new("E", vec![2, 1])),
                ],
            ),
        ])
    }

    fn edge(a: i64, b: i64) -> GenTuple<Dense> {
        GenTuple::new(vec![DenseConstraint::eq_const(0, a), DenseConstraint::eq_const(1, b)])
            .unwrap()
    }

    fn edge_db(edges: &[(i64, i64)]) -> Database<Dense> {
        let mut rel = GenRelation::empty(2);
        for &(a, b) in edges {
            rel.insert(edge(a, b));
        }
        let mut db = Database::new();
        db.insert("E", rel);
        db
    }

    fn sorted_render(rel: &GenRelation<Dense>) -> Vec<String> {
        let mut out: Vec<String> = rel.tuples().iter().map(ToString::to_string).collect();
        out.sort();
        out
    }

    fn assert_matches_batch(view: &mut MaterializedView<Dense>, edges: &[(i64, i64)]) {
        let batch = seminaive(view.program(), &edge_db(edges), &FixpointOptions::default())
            .expect("batch fixpoint");
        let maintained = view.current();
        assert_eq!(
            sorted_render(maintained.require("T").unwrap()),
            sorted_render(batch.idb.require("T").unwrap()),
        );
    }

    #[test]
    fn construction_matches_batch_fixpoint() {
        let edges = [(0, 1), (1, 2), (2, 3)];
        let mut view =
            MaterializedView::new(tc_program(), &edge_db(&edges), FixpointOptions::default())
                .unwrap();
        assert_matches_batch(&mut view, &edges);
    }

    #[test]
    fn insert_extends_the_closure() {
        let mut view = MaterializedView::new(
            tc_program(),
            &edge_db(&[(0, 1), (1, 2)]),
            FixpointOptions::default(),
        )
        .unwrap();
        let stats = view.insert("E", edge(2, 3)).unwrap();
        assert!(stats.delta_rounds > 0);
        assert_matches_batch(&mut view, &[(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn duplicate_insert_is_a_noop() {
        let mut view =
            MaterializedView::new(tc_program(), &edge_db(&[(0, 1)]), FixpointOptions::default())
                .unwrap();
        let stats = view.insert("E", edge(0, 1)).unwrap();
        assert_eq!(stats.delta_rounds, 0);
        assert_matches_batch(&mut view, &[(0, 1)]);
    }

    #[test]
    fn retract_shrinks_the_closure() {
        let mut view = MaterializedView::new(
            tc_program(),
            &edge_db(&[(0, 1), (1, 2), (2, 3)]),
            FixpointOptions::default(),
        )
        .unwrap();
        let stats = view.retract("E", &edge(1, 2)).unwrap();
        assert!(stats.support_adjust > 0);
        assert_matches_batch(&mut view, &[(0, 1), (2, 3)]);
    }

    #[test]
    fn retract_keeps_tuples_with_alternative_support() {
        // Two paths 0→3: through 1 and through 2. Deleting one leaves
        // T(0,3) supported by the other — the re-derivation phase must
        // resurrect the over-deleted cone.
        let edges = [(0, 1), (1, 3), (0, 2), (2, 3)];
        let mut view =
            MaterializedView::new(tc_program(), &edge_db(&edges), FixpointOptions::default())
                .unwrap();
        assert!(view.support_count("T", &edge(0, 3)) >= 2);
        let stats = view.retract("E", &edge(1, 3)).unwrap();
        assert!(stats.rederivations > 0, "T(0,3) must be re-derived");
        assert_matches_batch(&mut view, &[(0, 1), (0, 2), (2, 3)]);
        assert!(view.support_count("T", &edge(0, 3)) >= 1);
    }

    #[test]
    fn retract_deletes_cyclic_support() {
        // A 3-cycle: every closure tuple supports the others. Pure
        // counting would let the cycle keep itself alive; over-deletion
        // must take the whole cone down.
        let mut view = MaterializedView::new(
            tc_program(),
            &edge_db(&[(0, 1), (1, 2), (2, 0)]),
            FixpointOptions::default(),
        )
        .unwrap();
        view.retract("E", &edge(2, 0)).unwrap();
        assert_matches_batch(&mut view, &[(0, 1), (1, 2)]);
    }

    #[test]
    fn retract_then_reinsert_round_trips() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
        let mut view =
            MaterializedView::new(tc_program(), &edge_db(&edges), FixpointOptions::default())
                .unwrap();
        view.retract("E", &edge(2, 3)).unwrap();
        assert_matches_batch(&mut view, &[(0, 1), (1, 2), (3, 4)]);
        view.insert("E", edge(2, 3)).unwrap();
        assert_matches_batch(&mut view, &edges);
        assert_eq!(view.updates().len(), 2);
    }

    #[test]
    fn updates_reject_idb_and_unknown_relations() {
        let mut view =
            MaterializedView::new(tc_program(), &edge_db(&[(0, 1)]), FixpointOptions::default())
                .unwrap();
        assert!(matches!(view.insert("T", edge(5, 6)), Err(CqlError::Malformed(_))));
        assert!(matches!(view.insert("Q", edge(5, 6)), Err(CqlError::UnknownRelation(_))));
        assert!(matches!(view.retract("E", &edge(7, 8)), Err(CqlError::Malformed(_))));
    }
}
