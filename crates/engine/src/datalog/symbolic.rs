//! Symbolic fixpoint evaluation of Datalog + constraints.
//!
//! Rule firing is a join of generalized tuples: the body atoms' DNFs are
//! conjoined in the rule's variable space, constraints are added, and the
//! non-head variables are removed by quantifier elimination — a direct
//! implementation of the semantics of Definition 1.10 and Example 1.11.
//! Termination relies on the theory's canonical conjunctions over the
//! program's constants being finite (dense order: order networks;
//! equality: partition shapes; boolean: the `2^2^(m+v)` bound of Thm 5.6).
//!
//! Three engines are provided:
//! * [`naive`] — recompute every rule against the full instance per round;
//! * [`seminaive`] — delta-driven firing for positive programs;
//! * [`inflationary`] — Datalog¬ with inflationary negation (§1.2), where
//!   `¬R` is the DNF complement of the current stage of `R`.
//!
//! All engines take an iteration/size budget and report
//! [`CqlError::NotClosed`] when exceeded — which is the *expected* outcome
//! for Datalog with polynomial constraints (Example 1.12).
//!
//! Each engine threads an [`Engine`] context through rule firing: the
//! per-round batches of tuple conjunctions and quantifier eliminations run
//! on its executor, and every derived conjunction is canonicalized through
//! its interner (so re-derivations across rounds skip the solver). The
//! plain entry points build a context from [`FixpointOptions`]; the
//! `*_with` variants accept a caller-owned one, sharing its interner
//! across calls.

use crate::datalog::ast::{Atom, Literal, Program, Rule};
use crate::executor::Executor;
use crate::summary_index::SummaryIndex;
use crate::Engine;
use cql_core::error::{CqlError, Result};
use cql_core::policy::EnginePolicy;
use cql_core::relation::{Database, GenRelation, GenTuple};
use cql_core::theory::{Theory, Var};
use cql_trace::{count, span, Counter, MetricsScope, MetricsSnapshot, RoundStats};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::time::Instant;

/// Budget and knobs for fixpoint evaluation.
#[derive(Clone, Copy, Debug)]
pub struct FixpointOptions {
    /// Maximum number of fixpoint rounds before reporting non-closure.
    pub max_iterations: usize,
    /// Maximum total IDB tuples before reporting non-closure.
    pub max_tuples: usize,
    /// Worker threads for per-round tuple batches (1 = serial).
    pub threads: usize,
    /// Subsumption policy for the IDB relations the fixpoint builds.
    pub policy: EnginePolicy,
}

impl Default for FixpointOptions {
    fn default() -> FixpointOptions {
        FixpointOptions {
            max_iterations: 1_000,
            max_tuples: 200_000,
            threads: 1,
            policy: EnginePolicy::default(),
        }
    }
}

impl FixpointOptions {
    /// The engine context these options describe.
    #[must_use]
    pub fn engine<T: Theory>(&self) -> Engine<T> {
        Engine::new(Executor::new(self.threads), self.policy)
    }
}

/// Result of a fixpoint computation.
#[derive(Clone, Debug)]
pub struct FixpointResult<T: Theory> {
    /// The IDB relations at the fixpoint.
    pub idb: Database<T>,
    /// Number of rounds executed.
    pub iterations: usize,
}

/// Per-round telemetry collection for the `*_explain` entry points.
///
/// Each round runs under its own child [`MetricsScope`] (entailment
/// checks, QE calls and QE wall time attribute to the round that spent
/// them, then fold into the enclosing query scope on drop) and a
/// `"fixpoint.round"` span carrying the round's delta size as an
/// argument. Tuples produced / admitted / rejected are counted directly
/// in the loop — the delta relations also run `insert`, so counter
/// diffs would double-count them.
struct RoundLog {
    rounds: Vec<RoundStats>,
}

impl RoundLog {
    fn begin(iterations: usize) -> (MetricsScope, Instant, cql_trace::SpanGuard) {
        let scope = MetricsScope::enter("fixpoint.round");
        let mut round_span = span("fixpoint.round", "round");
        round_span.arg("round", iterations as u64 + 1);
        (scope, Instant::now(), round_span)
    }

    fn finish(
        &mut self,
        round: usize,
        produced: usize,
        delta: usize,
        scope: &MetricsScope,
        started: Instant,
        round_span: &mut cql_trace::SpanGuard,
    ) {
        let snap = scope.snapshot();
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        round_span.arg("produced", produced as u64);
        round_span.arg("delta", delta as u64);
        self.rounds.push(RoundStats {
            round: round as u64,
            produced: produced as u64,
            delta: delta as u64,
            subsumed: (produced - delta) as u64,
            entailment_checks: snap.get(Counter::EntailmentChecks),
            qe_calls: snap.get(Counter::QeCalls),
            qe_ns: qe_nanos(&snap),
            prune_candidates: snap.get(Counter::PruneCandidates),
            prune_survivors: snap.get(Counter::PruneSurvivors),
            qe_cache_hits: snap.get(Counter::QeCacheHits),
            wall_ns,
        });
    }
}

/// Total inclusive wall time of the theory QE entry points (`"qe.*"`
/// operator rows) in a snapshot.
fn qe_nanos(snap: &MetricsSnapshot) -> u64 {
    snap.ops.iter().filter(|(name, _)| name.starts_with("qe.")).map(|(_, agg)| agg.nanos).sum()
}

fn init_idb<T: Theory>(program: &Program<T>, engine: &Engine<T>) -> Result<Database<T>> {
    let arities = program.arities()?;
    let mut idb = Database::new();
    for name in program.idb_predicates() {
        idb.insert(name.clone(), engine.relation(arities[&name]));
    }
    Ok(idb)
}

fn instance_relation<'a, T: Theory>(
    name: &str,
    edb: &'a Database<T>,
    idb: &'a Database<T>,
) -> Result<&'a GenRelation<T>> {
    idb.get(name).map_or_else(|| edb.require(name), Ok)
}

/// Fire one rule against an instance; returns head tuples over `0..k`.
///
/// `delta_at`: in semi-naive mode, the index of the body literal that must
/// read from `delta` instead of the full instance.
fn fire_rule<T: Theory>(
    engine: &Engine<T>,
    rule: &Rule<T>,
    edb: &Database<T>,
    idb: &Database<T>,
    delta_at: Option<(usize, &Database<T>)>,
    complements: &mut BTreeMap<String, GenRelation<T>>,
) -> Result<Vec<GenTuple<T>>> {
    // Partial conjunctions over the rule's local variables.
    let mut acc: Vec<GenTuple<T>> = vec![GenTuple::top()];
    for (li, lit) in rule.body.iter().enumerate() {
        match lit {
            Literal::Constraint(c) => {
                acc = acc
                    .into_iter()
                    .filter_map(|t| engine.conjoin(&t, std::slice::from_ref(c)))
                    .collect();
            }
            Literal::Pos(a) => {
                let rel = match delta_at {
                    Some((idx, delta)) if idx == li => delta.require(&a.relation)?,
                    _ => instance_relation(&a.relation, edb, idb)?,
                };
                acc = conjoin_atom(engine, acc, rel, a);
            }
            Literal::Neg(a) => {
                let compl = complements.entry(a.relation.clone()).or_insert_with(|| {
                    instance_relation(&a.relation, edb, idb).expect("validated").complement()
                });
                acc = conjoin_atom(engine, acc, compl, a);
            }
        }
        if acc.is_empty() {
            return Ok(Vec::new());
        }
    }

    // Quantify away the non-head variables, one variable at a time; the
    // per-conjunction eliminations of a round are independent and run on
    // the executor.
    let head_vars: BTreeSet<Var> = rule.head.vars.iter().copied().collect();
    let n = rule.var_count();
    let mut conjs: Vec<Vec<T::Constraint>> =
        acc.into_iter().map(|t| t.constraints().to_vec()).collect();
    for v in 0..n {
        if head_vars.contains(&v) {
            continue;
        }
        let eliminated: Vec<Result<Vec<Vec<T::Constraint>>>> = engine.executor.map(conjs, |conj| {
            if conj.iter().any(|c| T::vars(c).contains(&v)) {
                engine.eliminate_cached(&conj, v)
            } else {
                Ok(vec![conj])
            }
        });
        let mut next = Vec::new();
        for r in eliminated {
            next.extend(r?);
        }
        conjs = next;
    }

    // Rename head variables to output columns.
    let mut position = vec![usize::MAX; n.max(1)];
    for (i, &v) in rule.head.vars.iter().enumerate() {
        position[v] = i;
    }
    let out = engine.executor.map(conjs, |conj| {
        for c in &conj {
            for v in T::vars(c) {
                debug_assert_ne!(position[v], usize::MAX, "variable survived elimination");
            }
        }
        let renamed: Vec<T::Constraint> =
            conj.iter().map(|c| T::rename(c, &|v| position[v])).collect();
        engine.intern(renamed)
    });
    Ok(out.into_iter().flatten().collect())
}

/// Conjoin every partial tuple with every (renamed) tuple of `rel`: the
/// cartesian product step of rule firing, parallelized over the partials.
///
/// With [`EnginePolicy::join_pruning`] on, the renamed tuples are put in
/// a [`SummaryIndex`] and each partial only conjoins the candidates whose
/// summaries may intersect its own — both live in the rule's variable
/// space, so shared variables (the join variables of the rule body) prune
/// directly. This is where transitive-closure-style rules win: partials
/// pin the join variable, and candidates pinned elsewhere never reach the
/// solver.
fn conjoin_atom<T: Theory>(
    engine: &Engine<T>,
    acc: Vec<GenTuple<T>>,
    rel: &GenRelation<T>,
    atom: &Atom,
) -> Vec<GenTuple<T>> {
    // Rename each relation tuple into the rule's variable space once.
    let renamed: Vec<Vec<T::Constraint>> =
        rel.tuples().iter().map(|u| u.rename(&|j| atom.vars[j])).collect();
    let index = engine
        .policy
        .join_pruning
        .then(|| SummaryIndex::<T>::build(renamed.iter().map(Vec::as_slice)));
    let products = engine.executor.flat_map(acc, |partial| match &index {
        Some(index) => index
            .matches(&T::summary(partial.constraints()))
            .into_iter()
            .filter_map(|i| engine.conjoin(&partial, &renamed[i]))
            .collect::<Vec<_>>(),
        None => renamed.iter().filter_map(|r| engine.conjoin(&partial, r)).collect(),
    });
    // Order-preserving dedup (interned tuples make the hashing cheap).
    let mut seen: HashSet<GenTuple<T>> = HashSet::with_capacity(products.len());
    let mut next = Vec::with_capacity(products.len());
    for t in products {
        if seen.insert(t.clone()) {
            next.push(t);
        }
    }
    next
}

fn check_budget<T: Theory>(
    idb: &Database<T>,
    iterations: usize,
    opts: &FixpointOptions,
) -> Result<()> {
    if iterations >= opts.max_iterations {
        return Err(CqlError::NotClosed {
            reason: "iteration budget exhausted (the query may have no closed form \
                     in this theory, cf. Example 1.12)"
                .into(),
            iterations,
        });
    }
    if idb.size() > opts.max_tuples {
        return Err(CqlError::NotClosed {
            reason: format!("IDB grew past {} tuples without converging", opts.max_tuples),
            iterations,
        });
    }
    Ok(())
}

/// Naive bottom-up evaluation of a positive Datalog + constraints program.
///
/// # Errors
/// Validation errors, theory `Unsupported` errors, or `NotClosed` when the
/// budget is exhausted.
pub fn naive<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    naive_with(&opts.engine(), program, edb, opts)
}

/// [`naive`] with a caller-provided engine context.
///
/// # Errors
/// As [`naive`].
pub fn naive_with<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    program.validate(edb, false)?;
    let idb = init_idb(program, engine)?;
    fixpoint_with_seed(engine, program, edb, idb, opts)
}

/// Inflationary Datalog¬ evaluation: negated IDB/EDB atoms are evaluated
/// against the *current stage* and derived facts are only ever added.
///
/// # Errors
/// As [`naive`].
pub fn inflationary<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    let engine = opts.engine();
    program.validate(edb, true)?;
    let idb = init_idb(program, &engine)?;
    fixpoint_with_seed(&engine, program, edb, idb, opts)
}

/// Run one stratum of a stratified program: the seed database holds the
/// completed lower strata (read-only for negation, which is sound because
/// stratification guarantees negated predicates never grow here).
pub(crate) fn fixpoint_stratum<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    seed: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    let engine = opts.engine();
    let mut idb = seed.clone();
    for name in program.idb_predicates() {
        if idb.get(&name).is_none() {
            let arities = program.arities()?;
            idb.insert(name.clone(), engine.relation(arities[&name]));
        }
    }
    fixpoint_with_seed(&engine, program, edb, idb, opts)
}

fn fixpoint_with_seed<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    idb: Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    fixpoint_rounds(engine, program, edb, idb, opts, None)
}

fn fixpoint_rounds<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    mut idb: Database<T>,
    opts: &FixpointOptions,
    mut log: Option<&mut RoundLog>,
) -> Result<FixpointResult<T>> {
    let mut iterations = 0;
    loop {
        check_budget(&idb, iterations, opts)?;
        count(Counter::FixpointRounds, 1);
        let (round_scope, round_start, mut round_span) = RoundLog::begin(iterations);
        let mut changed = false;
        // Inflationary semantics: all rules read the stage fixed at the
        // start of the round; derived tuples land in `staged`.
        let mut staged: Vec<(String, GenTuple<T>)> = Vec::new();
        let mut complements = BTreeMap::new();
        for rule in &program.rules {
            for t in fire_rule(engine, rule, edb, &idb, None, &mut complements)? {
                staged.push((rule.head.relation.clone(), t));
            }
        }
        let produced = staged.len();
        let mut delta = 0;
        for (name, t) in staged {
            let rel = idb.get(&name).expect("initialized").clone();
            let mut rel = rel;
            if rel.insert(t) {
                changed = true;
                delta += 1;
            }
            idb.insert(name, rel);
        }
        iterations += 1;
        if let Some(log) = log.as_deref_mut() {
            log.finish(iterations, produced, delta, &round_scope, round_start, &mut round_span);
        }
        if !changed {
            return Ok(FixpointResult { idb, iterations });
        }
    }
}

/// [`naive`] with per-round EXPLAIN telemetry: returns the fixpoint and
/// one [`RoundStats`] per round (see `RoundLog` for what each field
/// attributes where).
///
/// # Errors
/// As [`naive`].
pub fn naive_explain<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<(FixpointResult<T>, Vec<RoundStats>)> {
    naive_explain_with(&opts.engine(), program, edb, opts)
}

/// [`naive_explain`] with a caller-provided engine context.
///
/// # Errors
/// As [`naive`].
pub fn naive_explain_with<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<(FixpointResult<T>, Vec<RoundStats>)> {
    program.validate(edb, false)?;
    let idb = init_idb(program, engine)?;
    let mut log = RoundLog { rounds: Vec::new() };
    let result = fixpoint_rounds(engine, program, edb, idb, opts, Some(&mut log))?;
    Ok((result, log.rounds))
}

/// Semi-naive evaluation of a positive program: after the first round,
/// a rule only re-fires with one IDB body atom bound to the tuples that
/// were new in the previous round.
///
/// # Errors
/// As [`naive`].
pub fn seminaive<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    seminaive_with(&opts.engine(), program, edb, opts)
}

/// [`seminaive`] with a caller-provided engine context.
///
/// # Errors
/// As [`naive`].
pub fn seminaive_with<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    seminaive_rounds(engine, program, edb, opts, None)
}

/// [`seminaive`] with per-round EXPLAIN telemetry.
///
/// # Errors
/// As [`naive`].
pub fn seminaive_explain<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<(FixpointResult<T>, Vec<RoundStats>)> {
    seminaive_explain_with(&opts.engine(), program, edb, opts)
}

/// [`seminaive_explain`] with a caller-provided engine context.
///
/// # Errors
/// As [`naive`].
pub fn seminaive_explain_with<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<(FixpointResult<T>, Vec<RoundStats>)> {
    let mut log = RoundLog { rounds: Vec::new() };
    let result = seminaive_rounds(engine, program, edb, opts, Some(&mut log))?;
    Ok((result, log.rounds))
}

fn seminaive_rounds<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
    mut log: Option<&mut RoundLog>,
) -> Result<FixpointResult<T>> {
    program.validate(edb, false)?;
    let idb_preds = program.idb_predicates();
    let arities = program.arities()?;
    let mut idb = init_idb(program, engine)?;
    let mut iterations = 0;

    // Round 0: full firing (IDB relations are empty, so only rules whose
    // IDB body atoms are absent produce anything).
    count(Counter::FixpointRounds, 1);
    let (round_scope, round_start, mut round_span) = RoundLog::begin(iterations);
    let mut delta = init_idb(program, engine)?;
    let mut complements = BTreeMap::new();
    let mut produced = 0;
    for rule in &program.rules {
        for t in fire_rule(engine, rule, edb, &idb, None, &mut complements)? {
            produced += 1;
            let mut rel = idb.get(&rule.head.relation).expect("init").clone();
            if rel.insert(t.clone()) {
                let mut d = delta.get(&rule.head.relation).expect("init").clone();
                d.insert(t);
                delta.insert(rule.head.relation.clone(), d);
            }
            idb.insert(rule.head.relation.clone(), rel);
        }
    }
    iterations += 1;
    if let Some(log) = log.as_deref_mut() {
        log.finish(iterations, produced, delta.size(), &round_scope, round_start, &mut round_span);
    }
    drop(round_span);
    drop(round_scope);

    while delta.size() > 0 {
        check_budget(&idb, iterations, opts)?;
        count(Counter::FixpointRounds, 1);
        let (round_scope, round_start, mut round_span) = RoundLog::begin(iterations);
        let mut next_delta: Database<T> = Database::new();
        for name in &idb_preds {
            next_delta.insert(name.clone(), engine.relation(arities[name]));
        }
        let mut complements = BTreeMap::new();
        let mut produced = 0;
        for rule in &program.rules {
            // One firing per IDB body-atom position bound to the delta.
            for (li, lit) in rule.body.iter().enumerate() {
                let Literal::Pos(a) = lit else { continue };
                if !idb_preds.contains(&a.relation) {
                    continue;
                }
                if delta.get(&a.relation).is_none_or(GenRelation::is_empty) {
                    continue;
                }
                for t in fire_rule(engine, rule, edb, &idb, Some((li, &delta)), &mut complements)? {
                    produced += 1;
                    let mut rel = idb.get(&rule.head.relation).expect("init").clone();
                    if rel.insert(t.clone()) {
                        let mut d = next_delta.get(&rule.head.relation).expect("init").clone();
                        d.insert(t);
                        next_delta.insert(rule.head.relation.clone(), d);
                    }
                    idb.insert(rule.head.relation.clone(), rel);
                }
            }
        }
        delta = next_delta;
        iterations += 1;
        if let Some(log) = log.as_deref_mut() {
            log.finish(
                iterations,
                produced,
                delta.size(),
                &round_scope,
                round_start,
                &mut round_span,
            );
        }
    }
    Ok(FixpointResult { idb, iterations })
}
