//! Symbolic fixpoint evaluation of Datalog + constraints.
//!
//! Rule firing is a join of generalized tuples: the body atoms' DNFs are
//! conjoined in the rule's variable space, constraints are added, and the
//! non-head variables are removed by quantifier elimination — a direct
//! implementation of the semantics of Definition 1.10 and Example 1.11.
//! Termination relies on the theory's canonical conjunctions over the
//! program's constants being finite (dense order: order networks;
//! equality: partition shapes; boolean: the `2^2^(m+v)` bound of Thm 5.6).
//!
//! Three engines are provided:
//! * [`naive`] — recompute every rule against the full instance per round;
//! * [`seminaive`] — delta-driven firing for positive programs;
//! * [`inflationary`] — Datalog¬ with inflationary negation (§1.2), where
//!   `¬R` is the DNF complement of the current stage of `R`.
//!
//! All engines take an iteration/size budget and report
//! [`CqlError::NotClosed`] when exceeded — which is the *expected* outcome
//! for Datalog with polynomial constraints (Example 1.12).
//!
//! Each engine threads an [`Engine`] context through rule firing: the
//! per-round batches of tuple conjunctions and quantifier eliminations run
//! on its executor, and every derived conjunction is canonicalized through
//! its interner (so re-derivations across rounds skip the solver). The
//! plain entry points build a context from [`FixpointOptions`]; the
//! `*_with` variants accept a caller-owned one, sharing its interner
//! across calls.
//!
//! Rule bodies with two or more relational atoms default to the
//! **multiway join** of [`super::plan`] (see
//! [`EnginePolicy::multiway_join`]): instead of folding atoms
//! left-to-right and canonicalizing every intermediate pair, a per-rule
//! [`JoinPlan`](super::plan::JoinPlan) picks a variable elimination
//! order, per-atom summary levels are leapfrog-intersected, and the
//! solver sees one conjunction per surviving *full* combination. The
//! binary fold remains both the fallback (`multiway_join: false`, or a
//! single relational atom) and the equivalence baseline in the property
//! tests.

use crate::datalog::ast::{Atom, Literal, Program, Rule};
use crate::datalog::plan::{multiway_join, AtomData, PlanCache};
use crate::executor::Executor;
use crate::Engine;
use cql_core::error::{CqlError, Result};
use cql_core::policy::EnginePolicy;
use cql_core::relation::{Database, GenRelation, GenTuple};
use cql_core::theory::{Theory, Var};
use cql_trace::{
    count, hist, record_hist, span, Counter, MetricsScope, MetricsSnapshot, PlanStats, RoundStats,
};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::time::Instant;

/// Budget and knobs for fixpoint evaluation.
#[derive(Clone, Copy, Debug)]
pub struct FixpointOptions {
    /// Maximum number of fixpoint rounds before reporting non-closure.
    pub max_iterations: usize,
    /// Maximum total IDB tuples before reporting non-closure.
    pub max_tuples: usize,
    /// Worker threads for per-round tuple batches (1 = serial).
    pub threads: usize,
    /// Subsumption policy for the IDB relations the fixpoint builds.
    pub policy: EnginePolicy,
}

impl Default for FixpointOptions {
    fn default() -> FixpointOptions {
        FixpointOptions {
            max_iterations: 1_000,
            max_tuples: 200_000,
            threads: 1,
            policy: EnginePolicy::default(),
        }
    }
}

impl FixpointOptions {
    /// The engine context these options describe.
    #[must_use]
    pub fn engine<T: Theory>(&self) -> Engine<T> {
        Engine::new(Executor::new(self.threads), self.policy)
    }
}

/// Result of a fixpoint computation.
#[derive(Clone, Debug)]
pub struct FixpointResult<T: Theory> {
    /// The IDB relations at the fixpoint.
    pub idb: Database<T>,
    /// Number of rounds executed.
    pub iterations: usize,
}

/// Per-round telemetry collection for the `*_explain` entry points.
///
/// Each round runs under its own child [`MetricsScope`] (entailment
/// checks, QE calls and QE wall time attribute to the round that spent
/// them, then fold into the enclosing query scope on drop) and a
/// `"fixpoint.round"` span carrying the round's delta size as an
/// argument. Tuples produced / admitted / rejected are counted directly
/// in the loop — the delta relations also run `insert`, so counter
/// diffs would double-count them.
struct RoundLog {
    rounds: Vec<RoundStats>,
    plans: Vec<PlanStats>,
}

impl RoundLog {
    fn new() -> RoundLog {
        RoundLog { rounds: Vec::new(), plans: Vec::new() }
    }

    fn begin(iterations: usize) -> (MetricsScope, Instant, cql_trace::SpanGuard) {
        let scope = MetricsScope::enter("fixpoint.round");
        let mut round_span = span("fixpoint.round", "round");
        round_span.arg("round", iterations as u64 + 1);
        (scope, Instant::now(), round_span)
    }

    fn finish(
        &mut self,
        round: usize,
        produced: usize,
        delta: usize,
        scope: &MetricsScope,
        wall_ns: u64,
        round_span: &mut cql_trace::SpanGuard,
    ) {
        let snap = scope.snapshot();
        round_span.arg("produced", produced as u64);
        round_span.arg("delta", delta as u64);
        self.rounds.push(RoundStats {
            round: round as u64,
            produced: produced as u64,
            delta: delta as u64,
            subsumed: (produced - delta) as u64,
            entailment_checks: snap.get(Counter::EntailmentChecks),
            qe_calls: snap.get(Counter::QeCalls),
            qe_ns: qe_nanos(&snap),
            prune_candidates: snap.get(Counter::PruneCandidates),
            prune_survivors: snap.get(Counter::PruneSurvivors),
            qe_cache_hits: snap.get(Counter::QeCacheHits),
            multiway_probes: snap.get(Counter::MultiwayProbes),
            multiway_survivors: snap.get(Counter::MultiwaySurvivors),
            wall_ns,
        });
    }
}

/// Close out a fixpoint round's wall clock: the elapsed nanoseconds are
/// recorded into the round-latency histogram (inside the round scope,
/// which folds into the enclosing query scope on drop, so totals stay
/// exact at any executor width) and returned for [`RoundStats`].
fn record_round_wall(started: Instant) -> u64 {
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    record_hist(hist::FIXPOINT_ROUND_NS, wall_ns);
    wall_ns
}

/// Total inclusive wall time of the theory QE entry points (`"qe.*"`
/// operator rows) in a snapshot.
fn qe_nanos(snap: &MetricsSnapshot) -> u64 {
    snap.ops.iter().filter(|(name, _)| name.starts_with("qe.")).map(|(_, agg)| agg.nanos).sum()
}

fn init_idb<T: Theory>(program: &Program<T>, engine: &Engine<T>) -> Result<Database<T>> {
    let arities = program.arities()?;
    let mut idb = Database::new();
    for name in program.idb_predicates() {
        idb.insert(name.clone(), engine.relation(arities[&name]));
    }
    Ok(idb)
}

fn instance_relation<'a, T: Theory>(
    name: &str,
    edb: &'a Database<T>,
    idb: &'a Database<T>,
) -> Result<&'a GenRelation<T>> {
    idb.get(name).map_or_else(|| edb.require(name), Ok)
}

/// Where a rule body reads its relations from: the EDB/IDB pair, plus
/// the semi-naive delta binding (the body-literal index that must read
/// from `delta` instead of the full instance).
struct BodyCtx<'a, T: Theory> {
    edb: &'a Database<T>,
    idb: &'a Database<T>,
    delta_at: Option<(usize, &'a Database<T>)>,
}

impl<'a, T: Theory> BodyCtx<'a, T> {
    /// The relation a positive body literal at index `li` reads.
    fn positive(&self, li: usize, a: &Atom) -> Result<&'a GenRelation<T>> {
        match self.delta_at {
            Some((idx, delta)) if idx == li => delta.require(&a.relation),
            _ => instance_relation(&a.relation, self.edb, self.idb),
        }
    }
}

/// Run `f` over `items` — serially when the batch is below the policy's
/// [`EnginePolicy::serial_batch_threshold`] (skipping executor dispatch,
/// its spans, and its scope bookkeeping for tiny batches), on the
/// engine's executor otherwise.
fn map_batch<T: Theory, I: Send, O: Send>(
    engine: &Engine<T>,
    items: Vec<I>,
    f: impl Fn(I) -> O + Sync,
) -> Vec<O> {
    if items.len() < engine.policy.serial_batch_threshold {
        items.into_iter().map(f).collect()
    } else {
        engine.executor.map(items, f)
    }
}

/// [`map_batch`] with per-item vector results, flattened in item order.
fn flat_map_batch<T: Theory, I: Send, O: Send>(
    engine: &Engine<T>,
    items: Vec<I>,
    f: impl Fn(I) -> Vec<O> + Sync,
) -> Vec<O> {
    if items.len() < engine.policy.serial_batch_threshold {
        items.into_iter().flat_map(f).collect()
    } else {
        engine.executor.flat_map(items, f)
    }
}

/// Order-preserving dedup (interned tuples make the hashing cheap).
fn dedup_ordered<T: Theory>(tuples: impl IntoIterator<Item = GenTuple<T>>) -> Vec<GenTuple<T>> {
    let mut seen: HashSet<GenTuple<T>> = HashSet::new();
    let mut out = Vec::new();
    for t in tuples {
        if seen.insert(t.clone()) {
            out.push(t);
        }
    }
    out
}

/// Fire one rule against an instance; returns head tuples over `0..k`.
///
/// The body join runs multiway (variable-at-a-time, one solver call per
/// surviving full combination) when the policy allows it and the body
/// has at least two relational atoms; otherwise it is the binary
/// left-to-right fold. Both paths share the quantifier-elimination and
/// head-renaming stages below.
fn fire_rule<T: Theory>(
    engine: &Engine<T>,
    rule_idx: usize,
    rule: &Rule<T>,
    ctx: &BodyCtx<'_, T>,
    complements: &mut BTreeMap<String, GenRelation<T>>,
    cache: &mut PlanCache<T>,
) -> Result<Vec<GenTuple<T>>> {
    let rel_atoms = rule.body.iter().filter(|lit| !matches!(lit, Literal::Constraint(_))).count();
    let acc = if engine.policy.multiway_join && rel_atoms >= 2 {
        fire_body_multiway(engine, rule_idx, rule, ctx, complements, cache)?
    } else {
        fire_body_binary(engine, rule, ctx, complements, cache)?
    };
    if acc.is_empty() {
        return Ok(Vec::new());
    }
    let conjs: Vec<Vec<T::Constraint>> =
        acc.into_iter().map(|t| t.constraints().to_vec()).collect();
    project_conjs(engine, rule, conjs)
}

/// The shared tail of rule firing: quantify away the non-head variables
/// and rename head variables to output columns. **Multiplicity
/// preserving** — one output tuple per (input conjunction, QE disjunct)
/// that canonicalizes satisfiable, with no deduplication. Batch callers
/// ([`fire_rule`]) tolerate the duplicates (relation insert dedups);
/// the counted firing of incremental maintenance *depends* on them (each
/// output is one derivation).
pub(crate) fn project_conjs<T: Theory>(
    engine: &Engine<T>,
    rule: &Rule<T>,
    mut conjs: Vec<Vec<T::Constraint>>,
) -> Result<Vec<GenTuple<T>>> {
    // Quantify away the non-head variables, one variable at a time; the
    // per-conjunction eliminations of a round are independent and run on
    // the executor.
    let head_vars: BTreeSet<Var> = rule.head.vars.iter().copied().collect();
    let n = rule.var_count();
    for v in 0..n {
        if head_vars.contains(&v) {
            continue;
        }
        let eliminated: Vec<Result<Vec<Vec<T::Constraint>>>> = map_batch(engine, conjs, |conj| {
            if conj.iter().any(|c| T::vars(c).contains(&v)) {
                engine.eliminate_cached(&conj, v)
            } else {
                Ok(vec![conj])
            }
        });
        let mut next = Vec::new();
        for r in eliminated {
            next.extend(r?);
        }
        conjs = next;
    }

    // Rename head variables to output columns.
    let mut position = vec![usize::MAX; n.max(1)];
    for (i, &v) in rule.head.vars.iter().enumerate() {
        position[v] = i;
    }
    let out = map_batch(engine, conjs, |conj| {
        for c in &conj {
            for v in T::vars(c) {
                debug_assert_ne!(position[v], usize::MAX, "variable survived elimination");
            }
        }
        let renamed: Vec<T::Constraint> =
            conj.iter().map(|c| T::rename(c, &|v| position[v])).collect();
        engine.intern(renamed)
    });
    Ok(out.into_iter().flatten().collect())
}

/// Fire one rule of a **positive** program with an explicit relation per
/// body literal, preserving derivation multiplicity: the result holds one
/// tuple per (satisfiable body combination, QE disjunct), with no
/// deduplication anywhere on the path.
///
/// This is the firing primitive of incremental view maintenance
/// ([`super::incremental`]): support counts are exactly the output
/// multiplicities, so both the insertion and the over-deletion phases
/// must enumerate derivations identically — which they get for free by
/// sharing this function, differing only in which relations they bind to
/// each literal. The body join always runs multiway (the summary search
/// only discards provably unsatisfiable combinations, which contribute
/// no output either way, so counts are unaffected by pruning).
///
/// `rels[li]` is the relation positive literal `li` reads; entries for
/// constraint literals are ignored.
///
/// # Panics
/// Debug-asserts the rule has no negated literals (callers validate the
/// program as positive) and that every relational literal is bound.
pub(crate) fn fire_rule_counted<T: Theory>(
    engine: &Engine<T>,
    rule_idx: usize,
    rule: &Rule<T>,
    rels: &[Option<&GenRelation<T>>],
    cache: &mut PlanCache<T>,
) -> Result<Vec<GenTuple<T>>> {
    let mut base = GenTuple::top();
    for lit in &rule.body {
        debug_assert!(!matches!(lit, Literal::Neg(_)), "counted firing is for positive programs");
        if let Literal::Constraint(c) = lit {
            match engine.conjoin(&base, std::slice::from_ref(c)) {
                Some(t) => base = t,
                None => return Ok(Vec::new()),
            }
        }
    }
    let plan = cache.plan(rule_idx, rule);
    let mut atoms: Vec<std::sync::Arc<AtomData<T>>> = Vec::with_capacity(plan.atom_order.len());
    for &li in &plan.atom_order {
        let Literal::Pos(a) = &rule.body[li] else {
            unreachable!("plans order relational literals only")
        };
        let rel = rels[li].expect("every relational literal needs a bound relation");
        let data = cache.atom_data(rel, &a.vars);
        if data.renamed.is_empty() {
            return Ok(Vec::new());
        }
        atoms.push(data);
    }
    let (conjs, probes, survivors) = multiway_join(&atoms, &base, rule.var_count());
    count(Counter::MultiwayProbes, probes);
    count(Counter::MultiwaySurvivors, survivors);
    record_hist(hist::MULTIWAY_FANOUT, probes);
    cache.record(rule_idx, probes, survivors);
    project_conjs(engine, rule, conjs)
}

/// Binary body join: fold the literals left to right, canonicalizing
/// every intermediate conjunction. With
/// [`EnginePolicy::join_pruning`] on, each atom's cached summary index
/// restricts the product to candidates whose summaries may intersect
/// the partial's — both live in the rule's variable space, so shared
/// variables (the join variables of the rule body) prune directly.
fn fire_body_binary<T: Theory>(
    engine: &Engine<T>,
    rule: &Rule<T>,
    ctx: &BodyCtx<'_, T>,
    complements: &mut BTreeMap<String, GenRelation<T>>,
    cache: &mut PlanCache<T>,
) -> Result<Vec<GenTuple<T>>> {
    let mut acc: Vec<GenTuple<T>> = vec![GenTuple::top()];
    for (li, lit) in rule.body.iter().enumerate() {
        match lit {
            Literal::Constraint(c) => {
                acc = acc
                    .into_iter()
                    .filter_map(|t| engine.conjoin(&t, std::slice::from_ref(c)))
                    .collect();
            }
            Literal::Pos(a) => {
                let data = cache.atom_data(ctx.positive(li, a)?, &a.vars);
                acc = conjoin_atom(engine, acc, &data);
            }
            Literal::Neg(a) => {
                let compl = complements.entry(a.relation.clone()).or_insert_with(|| {
                    instance_relation(&a.relation, ctx.edb, ctx.idb)
                        .expect("validated")
                        .complement()
                });
                let data = cache.atom_data(compl, &a.vars);
                acc = conjoin_atom(engine, acc, &data);
            }
        }
        if acc.is_empty() {
            return Ok(Vec::new());
        }
    }
    Ok(acc)
}

/// Multiway body join: constraint literals seed a base conjunction, the
/// rule's cached [`JoinPlan`](super::plan::JoinPlan) orders the
/// relational atoms, and the leapfrog search of
/// [`multiway_join`] enumerates candidate combinations that every
/// atom's summary admits — the solver canonicalizes one conjunction per
/// surviving full combination instead of one per intermediate pair.
fn fire_body_multiway<T: Theory>(
    engine: &Engine<T>,
    rule_idx: usize,
    rule: &Rule<T>,
    ctx: &BodyCtx<'_, T>,
    complements: &mut BTreeMap<String, GenRelation<T>>,
    cache: &mut PlanCache<T>,
) -> Result<Vec<GenTuple<T>>> {
    let mut base = GenTuple::top();
    for lit in &rule.body {
        if let Literal::Constraint(c) = lit {
            match engine.conjoin(&base, std::slice::from_ref(c)) {
                Some(t) => base = t,
                None => return Ok(Vec::new()),
            }
        }
    }
    let plan = cache.plan(rule_idx, rule);
    let mut atoms: Vec<std::sync::Arc<AtomData<T>>> = Vec::with_capacity(plan.atom_order.len());
    for &li in &plan.atom_order {
        let data = match &rule.body[li] {
            Literal::Pos(a) => cache.atom_data(ctx.positive(li, a)?, &a.vars),
            Literal::Neg(a) => {
                let compl = complements.entry(a.relation.clone()).or_insert_with(|| {
                    instance_relation(&a.relation, ctx.edb, ctx.idb)
                        .expect("validated")
                        .complement()
                });
                cache.atom_data(compl, &a.vars)
            }
            Literal::Constraint(_) => unreachable!("plans order relational literals only"),
        };
        if data.renamed.is_empty() {
            return Ok(Vec::new());
        }
        atoms.push(data);
    }
    let (conjs, probes, survivors) = multiway_join(&atoms, &base, rule.var_count());
    count(Counter::MultiwayProbes, probes);
    count(Counter::MultiwaySurvivors, survivors);
    record_hist(hist::MULTIWAY_FANOUT, probes);
    cache.record(rule_idx, probes, survivors);
    let interned = map_batch(engine, conjs, |conj| engine.intern(conj));
    Ok(dedup_ordered(interned.into_iter().flatten()))
}

/// Conjoin every partial tuple with every renamed tuple of the atom: the
/// cartesian product step of the binary fold, parallelized over the
/// partials. The atom's renamed tuples, summaries and one-dimensional
/// summary index come from the run's [`PlanCache`], so unchanged
/// relations are renamed and indexed once per run rather than once per
/// round.
fn conjoin_atom<T: Theory>(
    engine: &Engine<T>,
    acc: Vec<GenTuple<T>>,
    data: &AtomData<T>,
) -> Vec<GenTuple<T>> {
    let index = data.index(engine.policy.join_pruning);
    let products = flat_map_batch(engine, acc, |partial| match index {
        Some(index) => index
            .matches(&T::summary(partial.constraints()))
            .into_iter()
            .filter_map(|i| engine.conjoin(&partial, &data.renamed[i]))
            .collect::<Vec<_>>(),
        None => data.renamed.iter().filter_map(|r| engine.conjoin(&partial, r)).collect(),
    });
    dedup_ordered(products)
}

fn check_budget<T: Theory>(
    idb: &Database<T>,
    iterations: usize,
    opts: &FixpointOptions,
) -> Result<()> {
    if iterations >= opts.max_iterations {
        return Err(CqlError::NotClosed {
            reason: "iteration budget exhausted (the query may have no closed form \
                     in this theory, cf. Example 1.12)"
                .into(),
            iterations,
        });
    }
    if idb.size() > opts.max_tuples {
        return Err(CqlError::NotClosed {
            reason: format!("IDB grew past {} tuples without converging", opts.max_tuples),
            iterations,
        });
    }
    Ok(())
}

/// Naive bottom-up evaluation of a positive Datalog + constraints program.
///
/// # Errors
/// Validation errors, theory `Unsupported` errors, or `NotClosed` when the
/// budget is exhausted.
pub fn naive<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    naive_with(&opts.engine(), program, edb, opts)
}

/// [`naive`] with a caller-provided engine context.
///
/// # Errors
/// As [`naive`].
pub fn naive_with<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    program.validate(edb, false)?;
    let idb = init_idb(program, engine)?;
    fixpoint_with_seed(engine, program, edb, idb, opts)
}

/// Inflationary Datalog¬ evaluation: negated IDB/EDB atoms are evaluated
/// against the *current stage* and derived facts are only ever added.
///
/// # Errors
/// As [`naive`].
pub fn inflationary<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    let engine = opts.engine();
    program.validate(edb, true)?;
    let idb = init_idb(program, &engine)?;
    fixpoint_with_seed(&engine, program, edb, idb, opts)
}

/// Run one stratum of a stratified program: the seed database holds the
/// completed lower strata (read-only for negation, which is sound because
/// stratification guarantees negated predicates never grow here).
pub(crate) fn fixpoint_stratum<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    seed: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    let engine = opts.engine();
    let mut idb = seed.clone();
    for name in program.idb_predicates() {
        if idb.get(&name).is_none() {
            let arities = program.arities()?;
            idb.insert(name.clone(), engine.relation(arities[&name]));
        }
    }
    fixpoint_with_seed(&engine, program, edb, idb, opts)
}

fn fixpoint_with_seed<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    idb: Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    fixpoint_rounds(engine, program, edb, idb, opts, None)
}

fn fixpoint_rounds<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    mut idb: Database<T>,
    opts: &FixpointOptions,
    mut log: Option<&mut RoundLog>,
) -> Result<FixpointResult<T>> {
    let mut cache = PlanCache::new(program.rules.len());
    let mut iterations = 0;
    loop {
        check_budget(&idb, iterations, opts)?;
        count(Counter::FixpointRounds, 1);
        let (round_scope, round_start, mut round_span) = RoundLog::begin(iterations);
        let mut changed = false;
        // Inflationary semantics: all rules read the stage fixed at the
        // start of the round; derived tuples land in `staged`.
        let mut staged: Vec<(String, GenTuple<T>)> = Vec::new();
        let mut complements = BTreeMap::new();
        for (ri, rule) in program.rules.iter().enumerate() {
            let ctx = BodyCtx { edb, idb: &idb, delta_at: None };
            for t in fire_rule(engine, ri, rule, &ctx, &mut complements, &mut cache)? {
                staged.push((rule.head.relation.clone(), t));
            }
        }
        let produced = staged.len();
        let mut delta = 0;
        for (name, t) in staged {
            let rel = idb.get(&name).expect("initialized").clone();
            let mut rel = rel;
            if rel.insert(t) {
                changed = true;
                delta += 1;
            }
            idb.insert(name, rel);
        }
        iterations += 1;
        let wall_ns = record_round_wall(round_start);
        if let Some(log) = log.as_deref_mut() {
            log.finish(iterations, produced, delta, &round_scope, wall_ns, &mut round_span);
        }
        if !changed {
            if let Some(log) = log.as_deref_mut() {
                log.plans = cache.plan_stats(program);
            }
            return Ok(FixpointResult { idb, iterations });
        }
    }
}

/// [`naive`] with per-round EXPLAIN telemetry: returns the fixpoint, one
/// [`RoundStats`] per round (see `RoundLog` for what each field
/// attributes where), and one [`PlanStats`] per multiway-planned rule.
///
/// # Errors
/// As [`naive`].
pub fn naive_explain<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<(FixpointResult<T>, Vec<RoundStats>, Vec<PlanStats>)> {
    naive_explain_with(&opts.engine(), program, edb, opts)
}

/// [`naive_explain`] with a caller-provided engine context.
///
/// # Errors
/// As [`naive`].
pub fn naive_explain_with<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<(FixpointResult<T>, Vec<RoundStats>, Vec<PlanStats>)> {
    program.validate(edb, false)?;
    let idb = init_idb(program, engine)?;
    let mut log = RoundLog::new();
    let result = fixpoint_rounds(engine, program, edb, idb, opts, Some(&mut log))?;
    Ok((result, log.rounds, log.plans))
}

/// Semi-naive evaluation of a positive program: after the first round,
/// a rule only re-fires with one IDB body atom bound to the tuples that
/// were new in the previous round.
///
/// # Errors
/// As [`naive`].
pub fn seminaive<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    seminaive_with(&opts.engine(), program, edb, opts)
}

/// [`seminaive`] with a caller-provided engine context.
///
/// # Errors
/// As [`naive`].
pub fn seminaive_with<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<FixpointResult<T>> {
    seminaive_rounds(engine, program, edb, opts, None)
}

/// [`seminaive`] with per-round EXPLAIN telemetry (see [`naive_explain`]
/// for the shape of the returned statistics).
///
/// # Errors
/// As [`naive`].
pub fn seminaive_explain<T: Theory>(
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<(FixpointResult<T>, Vec<RoundStats>, Vec<PlanStats>)> {
    seminaive_explain_with(&opts.engine(), program, edb, opts)
}

/// [`seminaive_explain`] with a caller-provided engine context.
///
/// # Errors
/// As [`naive`].
pub fn seminaive_explain_with<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
) -> Result<(FixpointResult<T>, Vec<RoundStats>, Vec<PlanStats>)> {
    let mut log = RoundLog::new();
    let result = seminaive_rounds(engine, program, edb, opts, Some(&mut log))?;
    Ok((result, log.rounds, log.plans))
}

fn seminaive_rounds<T: Theory>(
    engine: &Engine<T>,
    program: &Program<T>,
    edb: &Database<T>,
    opts: &FixpointOptions,
    mut log: Option<&mut RoundLog>,
) -> Result<FixpointResult<T>> {
    program.validate(edb, false)?;
    let idb_preds = program.idb_predicates();
    let arities = program.arities()?;
    let mut idb = init_idb(program, engine)?;
    let mut cache = PlanCache::new(program.rules.len());
    let mut iterations = 0;

    // Round 0: full firing (IDB relations are empty, so only rules whose
    // IDB body atoms are absent produce anything).
    count(Counter::FixpointRounds, 1);
    let (round_scope, round_start, mut round_span) = RoundLog::begin(iterations);
    let mut delta = init_idb(program, engine)?;
    let mut complements = BTreeMap::new();
    let mut produced = 0;
    for (ri, rule) in program.rules.iter().enumerate() {
        let fired = fire_rule(
            engine,
            ri,
            rule,
            &BodyCtx { edb, idb: &idb, delta_at: None },
            &mut complements,
            &mut cache,
        )?;
        for t in fired {
            produced += 1;
            let mut rel = idb.get(&rule.head.relation).expect("init").clone();
            if rel.insert(t.clone()) {
                let mut d = delta.get(&rule.head.relation).expect("init").clone();
                d.insert(t);
                delta.insert(rule.head.relation.clone(), d);
            }
            idb.insert(rule.head.relation.clone(), rel);
        }
    }
    iterations += 1;
    let wall_ns = record_round_wall(round_start);
    if let Some(log) = log.as_deref_mut() {
        log.finish(iterations, produced, delta.size(), &round_scope, wall_ns, &mut round_span);
    }
    drop(round_span);
    drop(round_scope);

    while delta.size() > 0 {
        check_budget(&idb, iterations, opts)?;
        count(Counter::FixpointRounds, 1);
        let (round_scope, round_start, mut round_span) = RoundLog::begin(iterations);
        let mut next_delta: Database<T> = Database::new();
        for name in &idb_preds {
            next_delta.insert(name.clone(), engine.relation(arities[name]));
        }
        let mut complements = BTreeMap::new();
        let mut produced = 0;
        for (ri, rule) in program.rules.iter().enumerate() {
            // One firing per IDB body-atom position bound to the delta.
            for (li, lit) in rule.body.iter().enumerate() {
                let Literal::Pos(a) = lit else { continue };
                if !idb_preds.contains(&a.relation) {
                    continue;
                }
                if delta.get(&a.relation).is_none_or(GenRelation::is_empty) {
                    continue;
                }
                let fired = fire_rule(
                    engine,
                    ri,
                    rule,
                    &BodyCtx { edb, idb: &idb, delta_at: Some((li, &delta)) },
                    &mut complements,
                    &mut cache,
                )?;
                for t in fired {
                    produced += 1;
                    let mut rel = idb.get(&rule.head.relation).expect("init").clone();
                    if rel.insert(t.clone()) {
                        let mut d = next_delta.get(&rule.head.relation).expect("init").clone();
                        d.insert(t);
                        next_delta.insert(rule.head.relation.clone(), d);
                    }
                    idb.insert(rule.head.relation.clone(), rel);
                }
            }
        }
        delta = next_delta;
        iterations += 1;
        let wall_ns = record_round_wall(round_start);
        if let Some(log) = log.as_deref_mut() {
            log.finish(iterations, produced, delta.size(), &round_scope, wall_ns, &mut round_span);
        }
    }
    if let Some(log) = log {
        log.plans = cache.plan_stats(program);
    }
    Ok(FixpointResult { idb, iterations })
}
