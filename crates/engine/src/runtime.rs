//! The shared serving runtime: one long-lived [`Engine`] plus one
//! [`SnapshotStore`], safe to share by reference across any number of
//! reader threads.
//!
//! The repo's evaluators historically treated [`Engine`] as per-call
//! state — each caller built its own interner and QE cache, so two
//! concurrent queries either cloned whole relations or serialized
//! behind a lock. A [`Runtime`] is the "millions of users" shape
//! (ROADMAP item 3): the interner and QE cache are sharded and
//! lock-striped internally (they always were thread-safe), the plan
//! and atom caches inside the writer's
//! [`MaterializedView`](crate::MaterializedView) are keyed
//! by relation content version — the same ids that define snapshot
//! epochs — and readers evaluate against pinned [`Snapshot`]s, so the
//! whole read path is race-free by construction: no reader ever
//! observes a partially applied commit, and concurrent readers share
//! every cache without invalidating each other.
//!
//! ```text
//! writers ──▶ SnapshotStore::insert/retract          (serialized)
//!                │  incremental delta propagation
//!                ▼
//!            publish(epoch n+1)      ── Arc swap ──▶ published
//!                                                      │
//! readers ──▶ Runtime::pin() ── O(1) Arc clone ────────┘
//!                │
//!                ▼
//!            query / contains_point against the pinned epoch
//!            (shared interner + QE cache + executor)
//! ```

use crate::algebra;
use crate::datalog::{FixpointOptions, Program};
use crate::snapshot::{Snapshot, SnapshotStore};
use crate::trace::UpdateStats;
use crate::Engine;
use cql_core::error::Result;
use cql_core::relation::{Database, GenRelation, GenTuple};
use cql_core::theory::Theory;

/// A long-lived evaluation context shared by every tenant and thread:
/// the engine (executor, interner, QE cache) plus the epoch-versioned
/// snapshot store. See the module docs.
pub struct Runtime<T: Theory> {
    engine: Engine<T>,
    store: SnapshotStore<T>,
}

impl<T: Theory> Runtime<T> {
    /// Materialize `program` over `edb` under `opts` and publish the
    /// initial epoch. The runtime's shared engine uses the options'
    /// thread count and policy.
    ///
    /// # Errors
    /// As [`SnapshotStore::new`].
    pub fn new(program: Program<T>, edb: &Database<T>, opts: FixpointOptions) -> Result<Self> {
        let engine = opts.engine();
        let store = SnapshotStore::new(program, edb, opts)?;
        Ok(Runtime { engine, store })
    }

    /// The shared engine (interner, QE cache, executor).
    #[must_use]
    pub fn engine(&self) -> &Engine<T> {
        &self.engine
    }

    /// The snapshot store.
    #[must_use]
    pub fn store(&self) -> &SnapshotStore<T> {
        &self.store
    }

    /// Pin the current epoch (O(1)).
    pub fn pin(&self) -> Snapshot<T> {
        self.store.pin()
    }

    /// Assert one EDB tuple and publish the resulting epoch.
    ///
    /// # Errors
    /// As [`SnapshotStore::insert`].
    pub fn insert(&self, relation: &str, tuple: GenTuple<T>) -> Result<UpdateStats> {
        self.store.insert(relation, tuple)
    }

    /// Retract one EDB tuple and publish the resulting epoch.
    ///
    /// # Errors
    /// As [`SnapshotStore::retract`].
    pub fn retract(&self, relation: &str, tuple: &GenTuple<T>) -> Result<UpdateStats> {
        self.store.retract(relation, tuple)
    }

    /// Select from one relation of a pinned snapshot: the tuples
    /// jointly satisfiable with `constraints`, canonicalized through
    /// the shared interner and summary-pruned before any solver call.
    ///
    /// # Errors
    /// `CqlError::UnknownRelation` if the relation is absent.
    pub fn query(
        &self,
        snapshot: &Snapshot<T>,
        relation: &str,
        constraints: &[T::Constraint],
    ) -> Result<GenRelation<T>> {
        Ok(algebra::select_with(&self.engine, snapshot.relation(relation)?, constraints))
    }

    /// Point-membership against a pinned snapshot (no solver work).
    ///
    /// # Errors
    /// `CqlError::UnknownRelation` if the relation is absent.
    pub fn contains_point(
        &self,
        snapshot: &Snapshot<T>,
        relation: &str,
        point: &[T::Value],
    ) -> Result<bool> {
        Ok(snapshot.relation(relation)?.satisfied_by(point))
    }

    /// All runtime gauges: the engine rows ([`Engine::gauges`] —
    /// interner/QE-cache occupancy plus flight-recorder rings) followed
    /// by the snapshot rows ([`SnapshotStore::gauges`] — epoch, commit
    /// count, live epochs, pinned readers per epoch). Feed them to a
    /// [`crate::trace::TelemetryRegistry`] for Prometheus exposition.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, u64)> {
        let mut rows = self.engine.gauges();
        rows.extend(self.store.gauges());
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datalog::{Atom, Literal, Rule};
    use cql_dense::{Dense, DenseConstraint};
    use std::sync::Arc;

    fn runtime() -> Runtime<Dense> {
        let program = Program::new(vec![
            Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
            Rule::new(
                Atom::new("T", vec![0, 1]),
                vec![
                    Literal::Pos(Atom::new("T", vec![0, 2])),
                    Literal::Pos(Atom::new("E", vec![2, 1])),
                ],
            ),
        ]);
        let mut db = Database::new();
        let mut e = GenRelation::empty(2);
        for i in 0..4 {
            e.insert(edge(i, i + 1));
        }
        db.insert("E", e);
        Runtime::new(program, &db, FixpointOptions::default()).unwrap()
    }

    fn edge(a: i64, b: i64) -> GenTuple<Dense> {
        GenTuple::new(vec![DenseConstraint::eq_const(0, a), DenseConstraint::eq_const(1, b)])
            .unwrap()
    }

    #[test]
    fn concurrent_readers_share_the_runtime() {
        let rt = Arc::new(runtime());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    let snap = rt.pin();
                    let hits = rt
                        .query(
                            &snap,
                            "T",
                            &[DenseConstraint::eq_const(0, 0), DenseConstraint::eq_const(1, 4)],
                        )
                        .unwrap();
                    assert_eq!(hits.len(), 1);
                    let point = [cql_arith::Rat::from(0), cql_arith::Rat::from(3)];
                    assert!(rt.contains_point(&snap, "T", &point).unwrap());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn gauges_cover_engine_and_snapshot_rows() {
        let rt = runtime();
        let _pin = rt.pin();
        let names: Vec<String> = rt.gauges().into_iter().map(|(n, _)| n).collect();
        assert!(names.iter().any(|n| n == "interner_entries"));
        assert!(names.iter().any(|n| n == "snapshot_epoch"));
        assert!(names.iter().any(|n| n == "snapshot_pinned_readers"));
    }
}
