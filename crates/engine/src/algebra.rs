//! The *generalized relational algebra* (§2.1 of the paper): "all the
//! operations are simple variants of the familiar database ones except
//! for projection. Projection corresponds to quantifier elimination and
//! is the nontrivial operation."
//!
//! These operators work directly on generalized relations, independent of
//! the formula AST — useful for procedural pipelines and as the algebraic
//! target a calculus optimizer would translate into.
//!
//! Every operator has an engine-aware `*_with` form that runs its
//! per-tuple batches (conjunctions, eliminations) on the engine's
//! executor and canonicalizes results through its interner; the plain
//! forms delegate to a serial engine.
//!
//! Each `*_with` operator runs under [`cql_trace::op_timed`]
//! (`"algebra.<op>"`): inclusive wall time aggregates into the current
//! metrics scope's operator table and, in traced builds, emits a span.
//! Timings are inclusive — `join` includes the `product` and `select` it
//! is built from.

use crate::summary_index::SummaryIndex;
use crate::Engine;
use cql_core::error::{CqlError, Result};
use cql_core::relation::{GenRelation, GenTuple};
use cql_core::summary::ConstraintSummary;
use cql_core::theory::Theory;
use cql_trace::{count, op_timed, Counter};

/// σ — restrict a relation by additional constraints (columns are the
/// constraint variables).
#[must_use]
pub fn select<T: Theory>(rel: &GenRelation<T>, constraints: &[T::Constraint]) -> GenRelation<T> {
    select_with(&Engine::serial(), rel, constraints)
}

/// [`select`] on an engine context.
#[must_use]
pub fn select_with<T: Theory>(
    engine: &Engine<T>,
    rel: &GenRelation<T>,
    constraints: &[T::Constraint],
) -> GenRelation<T> {
    op_timed("algebra.select", || {
        // Filter-before-solve: one summary for the selection constraints,
        // one per tuple; pairs whose summaries refute intersection are
        // unsatisfiable (soundness law) and skip the solver entirely.
        let pruning = engine.policy.join_pruning;
        let sel = pruning.then(|| T::summary(constraints));
        let tuples = engine.executor.map(rel.tuples().to_vec(), |t| {
            if let Some(sel) = &sel {
                count(Counter::PruneCandidates, 1);
                if !sel.may_intersect(&T::summary(t.constraints())) {
                    return None;
                }
                count(Counter::PruneSurvivors, 1);
            }
            engine.conjoin(&t, constraints)
        });
        let mut out = engine.relation(rel.arity());
        for t in tuples.into_iter().flatten() {
            out.insert(t);
        }
        out
    })
}

/// π — project onto `columns` (in the given order): quantifier-eliminate
/// every other column, then renumber. Duplicate columns are allowed.
///
/// # Errors
/// Theory `Unsupported` errors from quantifier elimination, or
/// `Malformed` on out-of-range columns.
pub fn project<T: Theory>(rel: &GenRelation<T>, columns: &[usize]) -> Result<GenRelation<T>> {
    project_with(&Engine::serial(), rel, columns)
}

/// [`project`] on an engine context.
///
/// # Errors
/// As [`project`].
pub fn project_with<T: Theory>(
    engine: &Engine<T>,
    rel: &GenRelation<T>,
    columns: &[usize],
) -> Result<GenRelation<T>> {
    op_timed("algebra.project", || {
        for &c in columns {
            if c >= rel.arity() {
                return Err(CqlError::Malformed(format!(
                    "projection column {c} out of range for arity {}",
                    rel.arity()
                )));
            }
        }
        // Eliminate the dropped columns.
        let mut current = rel.clone();
        for v in 0..rel.arity() {
            if !columns.contains(&v) {
                current = eliminate_with(engine, &current, v)?;
            }
        }
        // Renumber kept columns; duplicates get equality constraints.
        let mut out = engine.relation(columns.len());
        for t in current.tuples() {
            // position of original column v in the output (first occurrence).
            let first_pos = |v: usize| columns.iter().position(|&c| c == v).expect("kept");
            let mut constraints = t.rename(&first_pos);
            for (i, &c) in columns.iter().enumerate() {
                if first_pos(c) != i {
                    constraints.push(T::var_eq(first_pos(c), i));
                }
            }
            if let Some(t2) = engine.intern(constraints) {
                out.insert(t2);
            }
        }
        Ok(out)
    })
}

/// × — cartesian product: the right relation's columns are shifted past
/// the left's.
#[must_use]
pub fn product<T: Theory>(a: &GenRelation<T>, b: &GenRelation<T>) -> GenRelation<T> {
    product_with(&Engine::serial(), a, b)
}

/// [`product`] on an engine context: the pairwise conjunctions run on the
/// executor, one batch per left tuple.
///
/// The product is never summary-pruned: the sides occupy disjoint column
/// spaces, so their summaries cannot conflict (every pair is satisfiable
/// whenever both tuples are). Pruning applies where columns are shared or
/// equated — [`select_with`], [`intersect_with`], [`join_with`].
#[must_use]
pub fn product_with<T: Theory>(
    engine: &Engine<T>,
    a: &GenRelation<T>,
    b: &GenRelation<T>,
) -> GenRelation<T> {
    op_timed("algebra.product", || {
        let shift = a.arity();
        let shifted: Vec<Vec<T::Constraint>> =
            b.tuples().iter().map(|tb| tb.rename(&|v| v + shift)).collect();
        let tuples = engine.executor.flat_map(a.tuples().to_vec(), |ta| {
            shifted
                .iter()
                .filter_map(|tb| {
                    let mut constraints = ta.constraints().to_vec();
                    constraints.extend_from_slice(tb);
                    engine.intern(constraints)
                })
                .collect::<Vec<_>>()
        });
        let mut out = engine.relation(a.arity() + b.arity());
        for t in tuples {
            out.insert(t);
        }
        out
    })
}

/// ∩ — intersection: pairwise conjunction of tuples (same arity), the
/// engine-aware counterpart of [`GenRelation::intersect`].
///
/// # Panics
/// Panics on arity mismatch.
#[must_use]
pub fn intersect_with<T: Theory>(
    engine: &Engine<T>,
    a: &GenRelation<T>,
    b: &GenRelation<T>,
) -> GenRelation<T> {
    assert_eq!(a.arity(), b.arity(), "intersect arity mismatch");
    op_timed("algebra.intersect", || {
        // Both sides share one column space, so summaries are directly
        // comparable: index the right side, probe per left tuple.
        let index = engine
            .policy
            .join_pruning
            .then(|| SummaryIndex::<T>::build(b.tuples().iter().map(|t| t.constraints())));
        let tuples = engine.executor.flat_map(a.tuples().to_vec(), |ta| {
            let bs = b.tuples();
            match &index {
                Some(index) => index
                    .matches(&T::summary(ta.constraints()))
                    .into_iter()
                    .filter_map(|i| engine.conjoin(&ta, bs[i].constraints()))
                    .collect::<Vec<_>>(),
                None => bs.iter().filter_map(|tb| engine.conjoin(&ta, tb.constraints())).collect(),
            }
        });
        let mut out = engine.relation(a.arity());
        for t in tuples {
            out.insert(t);
        }
        out
    })
}

/// ∃ — eliminate one variable from every tuple (quantifier elimination on
/// the executor), the engine-aware counterpart of
/// [`GenRelation::eliminate`].
///
/// # Errors
/// Propagates `CqlError::Unsupported` from the theory.
pub fn eliminate_with<T: Theory>(
    engine: &Engine<T>,
    rel: &GenRelation<T>,
    var: usize,
) -> Result<GenRelation<T>> {
    op_timed("algebra.eliminate", || {
        let eliminated: Vec<Result<Vec<GenTuple<T>>>> =
            engine.executor.map(rel.tuples().to_vec(), |t| {
                Ok(engine
                    .eliminate_cached(t.constraints(), var)?
                    .into_iter()
                    .filter_map(|conj| engine.intern(conj))
                    .collect())
            });
        let mut out = engine.relation(rel.arity());
        for r in eliminated {
            for t in r? {
                out.insert(t);
            }
        }
        Ok(out)
    })
}

/// ⋈ — equi-join on column pairs `(left, right)`; the output keeps all
/// columns of both sides (right shifted), with join equalities conjoined.
#[must_use]
pub fn join<T: Theory>(
    a: &GenRelation<T>,
    b: &GenRelation<T>,
    on: &[(usize, usize)],
) -> GenRelation<T> {
    join_with(&Engine::serial(), a, b, on)
}

/// [`join`] on an engine context.
#[must_use]
pub fn join_with<T: Theory>(
    engine: &Engine<T>,
    a: &GenRelation<T>,
    b: &GenRelation<T>,
    on: &[(usize, usize)],
) -> GenRelation<T> {
    op_timed("algebra.join", || {
        let shift = a.arity();
        let eqs: Vec<T::Constraint> = on.iter().map(|&(l, r)| T::var_eq(l, r + shift)).collect();
        if !engine.policy.join_pruning || on.is_empty() {
            return select_with(engine, &product_with(engine, a, b), &eqs);
        }
        // Pruned path. The two sides live in disjoint column spaces, so
        // box summaries alone never conflict — but the join equalities
        // make the joined columns comparable: bucket the right side on
        // the join column its summaries bound most often, and probe with
        // the left tuple's interval on the matching left column. A pair
        // whose intervals at a joined column are disjoint cannot satisfy
        // the equality, so skipping it is sound. Each surviving pair is
        // conjoined in the same two steps as `select ∘ product` (product
        // conjunction, then the equality constraints), so the output is
        // identical to the unpruned path minus the doomed pairs.
        let summaries: Vec<T::Summary> =
            b.tuples().iter().map(|t| T::summary(t.constraints())).collect();
        let (l0, r0) = *on
            .iter()
            .max_by_key(|(_, r)| summaries.iter().filter(|s| s.range(*r).is_some()).count())
            .expect("on is non-empty");
        let index = SummaryIndex::<T>::with_summaries(summaries, Some(r0));
        let shifted: Vec<Vec<T::Constraint>> =
            b.tuples().iter().map(|tb| tb.rename(&|v| v + shift)).collect();
        let tuples = engine.executor.flat_map(a.tuples().to_vec(), |ta| {
            let probe = T::summary(ta.constraints()).range(l0);
            index
                .matches_range(probe)
                .into_iter()
                .filter_map(|i| {
                    let mut constraints = ta.constraints().to_vec();
                    constraints.extend_from_slice(&shifted[i]);
                    engine.intern(constraints).and_then(|t| engine.conjoin(&t, &eqs))
                })
                .collect::<Vec<_>>()
        });
        let mut out = engine.relation(a.arity() + b.arity());
        for t in tuples {
            out.insert(t);
        }
        out
    })
}

/// ∪ — union (delegates to the representation union).
#[must_use]
pub fn union<T: Theory>(a: &GenRelation<T>, b: &GenRelation<T>) -> GenRelation<T> {
    a.union(b)
}

/// [`union`] on an engine context: the left side is re-inserted into a
/// relation carrying the engine's policy, then the right side is merged.
#[must_use]
pub fn union_with<T: Theory>(
    engine: &Engine<T>,
    a: &GenRelation<T>,
    b: &GenRelation<T>,
) -> GenRelation<T> {
    assert_eq!(a.arity(), b.arity(), "union arity mismatch");
    op_timed("algebra.union", || {
        let mut out = engine.relation(a.arity());
        for t in a.tuples() {
            out.insert(t.clone());
        }
        for t in b.tuples() {
            out.insert(t.clone());
        }
        out
    })
}

/// ∖ — difference `a ∖ b = a ∩ ¬b` (uses the DNF complement; see
/// [`GenRelation::complement`] for cost caveats).
#[must_use]
pub fn difference<T: Theory>(a: &GenRelation<T>, b: &GenRelation<T>) -> GenRelation<T> {
    a.intersect(&b.complement())
}

/// ρ — permute columns by `perm` (`perm[i]` = source column of output
/// column `i`; must be a permutation).
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..arity`.
#[must_use]
pub fn rename_columns<T: Theory>(rel: &GenRelation<T>, perm: &[usize]) -> GenRelation<T> {
    assert_eq!(perm.len(), rel.arity(), "permutation length mismatch");
    let mut inverse = vec![usize::MAX; perm.len()];
    for (i, &src) in perm.iter().enumerate() {
        assert!(inverse[src] == usize::MAX, "not a permutation");
        inverse[src] = i;
    }
    rel.rename_into(rel.arity(), &|v| inverse[v])
}
