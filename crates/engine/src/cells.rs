//! The paper's `EVAL_φ` algorithm (§3.1, adapted generically).
//!
//! For theories with a finite cell decomposition ([`CellTheory`] — dense
//! linear order's r-configurations, equality's e-configurations), a
//! relational calculus query is evaluated by enumerating all cells over
//! the free variables and testing, per cell, whether `F(ξ) → φ` is valid.
//! By Lemmas 3.9/3.10 (and their §4 analogues) validity over a cell can be
//! checked *at a single sample point* of the cell; quantifiers walk the
//! one-variable extensions of the current cell (procedure `Boolean-EVAL`).
//!
//! This evaluator handles arbitrary negation for free — the satisfying
//! cells are simply the complement set — which is what gives relational
//! calculus with dense order / equality constraints its LOGSPACE data
//! complexity in the paper.

use cql_core::error::{CqlError, Result};
use cql_core::formula::{CalculusQuery, Formula};
use cql_core::relation::{dedup_values, Database, GenRelation, GenTuple};
use cql_core::theory::{CellTheory, Theory, Var};

/// Evaluate a calculus query with the cell-based `EVAL_φ` algorithm.
///
/// Output column `i` is free variable `query.free[i]`, as with
/// [`crate::calculus::evaluate`]; the two evaluators agree on all queries
/// both support (property-tested in the theory crates).
///
/// # Errors
/// Validation errors from the formula.
pub fn evaluate<T: CellTheory>(
    query: &CalculusQuery<T>,
    db: &Database<T>,
) -> Result<GenRelation<T>> {
    cql_trace::op_timed("cells.evaluate", || evaluate_inner(query, db))
}

fn evaluate_inner<T: CellTheory>(
    query: &CalculusQuery<T>,
    db: &Database<T>,
) -> Result<GenRelation<T>> {
    query.formula.validate(db)?;
    // Renumber variables into "slots": free variables become 0..m by the
    // query's output order, and each quantifier at nesting depth d binds
    // slot m+d — so the slot bound by a quantifier always equals the size
    // of the cell being extended.
    let m = query.free.len();
    let slotted = slot_formula(&query.formula, &query.free, m)?;
    let mut constants = db.constants();
    constants.extend(query.formula.constants());
    dedup_values(&mut constants);

    let mut out = GenRelation::empty(m);
    for cell in T::cells(&constants, m) {
        let sample = T::cell_sample(&cell, &constants);
        if boolean_eval(&slotted, &cell, &sample, db, &constants) {
            if let Some(t) = GenTuple::new(T::cell_formula(&cell)) {
                out.insert(t);
            }
        }
    }
    Ok(out)
}

/// Decide a sentence with the cell-based algorithm.
///
/// # Errors
/// `CqlError::Malformed` if the formula has free variables.
pub fn decide<T: CellTheory>(formula: &Formula<T>, db: &Database<T>) -> Result<bool> {
    cql_trace::op_timed("cells.decide", || {
        if !formula.free_vars().is_empty() {
            return Err(CqlError::Malformed("cells::decide requires a sentence".into()));
        }
        formula.validate(db)?;
        let slotted = slot_formula(formula, &[], 0)?;
        let mut constants = db.constants();
        constants.extend(formula.constants());
        dedup_values(&mut constants);
        let cell = T::empty_cell();
        let sample = T::cell_sample(&cell, &constants);
        Ok(boolean_eval(&slotted, &cell, &sample, db, &constants))
    })
}

/// Rewrite a formula so variable indices are evaluation slots.
fn slot_formula<T: Theory>(
    formula: &Formula<T>,
    free: &[Var],
    depth_base: usize,
) -> Result<Formula<T>> {
    let max_var = formula.all_vars().last().map_or(0, |&v| v + 1);
    let mut env: Vec<Option<usize>> =
        vec![None; max_var.max(free.iter().map(|&v| v + 1).max().unwrap_or(0))];
    for (i, &v) in free.iter().enumerate() {
        env[v] = Some(i);
    }
    slot_rec(formula, &mut env, depth_base)
}

fn slot_rec<T: Theory>(
    formula: &Formula<T>,
    env: &mut Vec<Option<usize>>,
    depth: usize,
) -> Result<Formula<T>> {
    let lookup = |env: &[Option<usize>], v: Var| -> Result<usize> {
        env.get(v).copied().flatten().ok_or_else(|| {
            CqlError::Malformed(format!("variable {v} used outside its quantifier scope"))
        })
    };
    Ok(match formula {
        Formula::Atom { relation, vars } => {
            let mut slotted = Vec::with_capacity(vars.len());
            for &v in vars {
                slotted.push(lookup(env, v)?);
            }
            Formula::Atom { relation: relation.clone(), vars: slotted }
        }
        Formula::Constraint(c) => {
            for v in T::vars(c) {
                lookup(env, v)?;
            }
            Formula::Constraint(T::rename(c, &|v| env[v].expect("checked above")))
        }
        Formula::And(a, b) => {
            Formula::And(Box::new(slot_rec(a, env, depth)?), Box::new(slot_rec(b, env, depth)?))
        }
        Formula::Or(a, b) => {
            Formula::Or(Box::new(slot_rec(a, env, depth)?), Box::new(slot_rec(b, env, depth)?))
        }
        Formula::Not(a) => Formula::Not(Box::new(slot_rec(a, env, depth)?)),
        Formula::Exists(v, a) => {
            if env.len() <= *v {
                env.resize(v + 1, None);
            }
            env[*v] = Some(depth);
            let inner = slot_rec(a, env, depth + 1)?;
            env[*v] = None;
            Formula::Exists(depth, Box::new(inner))
        }
        Formula::Forall(v, a) => {
            if env.len() <= *v {
                env.resize(v + 1, None);
            }
            env[*v] = Some(depth);
            let inner = slot_rec(a, env, depth + 1)?;
            env[*v] = None;
            Formula::Forall(depth, Box::new(inner))
        }
    })
}

/// The recursive `Boolean-EVAL_φ` procedure: is `F(ξ) → ψ` valid?
///
/// By the indistinguishability lemmas this equals "does the sample point
/// of ξ satisfy ψ", with quantifiers ranging over cell extensions.
fn boolean_eval<T: CellTheory>(
    formula: &Formula<T>,
    cell: &T::Cell,
    sample: &[T::Value],
    db: &Database<T>,
    constants: &[T::Value],
) -> bool {
    match formula {
        Formula::Constraint(c) => T::eval(c, sample),
        Formula::Atom { relation, vars } => {
            let rel = db.get(relation).expect("validated");
            let point: Vec<T::Value> = vars.iter().map(|&s| sample[s].clone()).collect();
            rel.satisfied_by(&point)
        }
        Formula::And(a, b) => {
            boolean_eval(a, cell, sample, db, constants)
                && boolean_eval(b, cell, sample, db, constants)
        }
        Formula::Or(a, b) => {
            boolean_eval(a, cell, sample, db, constants)
                || boolean_eval(b, cell, sample, db, constants)
        }
        Formula::Not(a) => !boolean_eval(a, cell, sample, db, constants),
        Formula::Exists(_, a) => T::extensions(cell, constants).iter().any(|ext| {
            let s = T::cell_sample(ext, constants);
            boolean_eval(a, ext, &s, db, constants)
        }),
        Formula::Forall(_, a) => T::extensions(cell, constants).iter().all(|ext| {
            let s = T::cell_sample(ext, constants);
            boolean_eval(a, ext, &s, db, constants)
        }),
    }
}
