//! Engine store properties: the indexed subsumption store is *exactly*
//! equivalent to the quadratic baseline (its signature and sample-point
//! filters are sound, never heuristic), for all four constraint theories;
//! and interned evaluation agrees with direct (un-interned)
//! canonicalization.
//!
//! Relation-building inserts honor `CQL_ENGINE_THREADS` only through the
//! executor of the engine under test — see `thread_equivalence.rs` for
//! the executor-facing matrix.

use cql_bool::{BoolConstraint, BoolTerm};
use cql_core::relation::{GenRelation, GenTuple};
use cql_core::theory::Theory;
use cql_core::{EnginePolicy, SubsumptionMode};
use cql_dense::DenseConstraint;
use cql_engine::Engine;
use cql_equality::EqConstraint;
use cql_poly::PolyConstraint;
use proptest::prelude::*;

/// Insert the same conjunction stream under the quadratic baseline and
/// the indexed store, and require identical relations (same tuples in
/// the same order).
fn assert_modes_agree<T: Theory>(arity: usize, conjs: &[Vec<T::Constraint>]) {
    let mut quad = GenRelation::<T>::with_policy(
        arity,
        EnginePolicy::with_subsumption(SubsumptionMode::Quadratic),
    );
    let mut indexed = GenRelation::<T>::with_policy(
        arity,
        EnginePolicy::with_subsumption(SubsumptionMode::Indexed),
    );
    for conj in conjs {
        if let Some(t) = GenTuple::<T>::new(conj.clone()) {
            quad.insert(t.clone());
            indexed.insert(t);
        }
    }
    assert_eq!(quad.tuples(), indexed.tuples(), "indexed store diverged from quadratic baseline");
}

/// Interning must be semantically invisible: the interner returns the
/// same canonical tuple as direct construction, and a second intern of
/// the same raw conjunction shares the first's representation.
fn assert_intern_transparent<T: Theory>(conjs: &[Vec<T::Constraint>]) {
    let engine: Engine<T> = Engine::serial();
    for conj in conjs {
        let direct = GenTuple::<T>::new(conj.clone());
        let interned = engine.intern(conj.clone());
        assert_eq!(direct, interned, "interned tuple differs from direct canonicalization");
        let again = engine.intern(conj.clone());
        assert_eq!(interned, again);
        if let (Some(a), Some(b)) = (&interned, &again) {
            assert!(a.shares_repr(b), "re-interning did not share the representation");
        }
    }
}

// ---------------------------------------------------------------- dense

fn dense_constraint() -> impl Strategy<Value = DenseConstraint> {
    prop_oneof![
        (0usize..4, 0usize..4).prop_map(|(a, b)| DenseConstraint::lt(a, b)),
        (0usize..4, 0usize..4).prop_map(|(a, b)| DenseConstraint::le(a, b)),
        (0usize..4, 0usize..4).prop_map(|(a, b)| DenseConstraint::eq(a, b)),
        (0usize..4, 0usize..4).prop_map(|(a, b)| DenseConstraint::ne(a, b)),
        (0usize..4, -2i64..3).prop_map(|(v, c)| DenseConstraint::le_const(v, c)),
        (0usize..4, -2i64..3).prop_map(|(v, c)| DenseConstraint::ge_const(v, c)),
        (0usize..4, -2i64..3).prop_map(|(v, c)| DenseConstraint::eq_const(v, c)),
    ]
}

fn dense_relation() -> impl Strategy<Value = Vec<Vec<DenseConstraint>>> {
    prop::collection::vec(prop::collection::vec(dense_constraint(), 0..4), 0..12)
}

// ------------------------------------------------------------- equality

fn eq_constraint() -> impl Strategy<Value = EqConstraint> {
    prop_oneof![
        (0usize..4, 0usize..4).prop_map(|(a, b)| EqConstraint::eq(a, b)),
        (0usize..4, 0usize..4).prop_map(|(a, b)| EqConstraint::ne(a, b)),
        (0usize..4, 0i64..3).prop_map(|(v, c)| EqConstraint::eq_const(v, c)),
        (0usize..4, 0i64..3).prop_map(|(v, c)| EqConstraint::ne_const(v, c)),
    ]
}

fn eq_relation() -> impl Strategy<Value = Vec<Vec<EqConstraint>>> {
    prop::collection::vec(prop::collection::vec(eq_constraint(), 0..4), 0..12)
}

// ----------------------------------------------------------------- poly

fn poly_constraint() -> impl Strategy<Value = PolyConstraint> {
    use cql_arith::{Poly, Rat};
    // Linear one-variable constraints `x_v θ c` — enough to exercise
    // subsumption (intervals entail wider intervals) while keeping the
    // syntactic `entails` meaningful.
    prop_oneof![
        (0usize..3, -2i64..3)
            .prop_map(|(v, c)| PolyConstraint::le(&Poly::var(v), &Poly::constant(Rat::from(c)))),
        (0usize..3, -2i64..3)
            .prop_map(|(v, c)| PolyConstraint::le(&Poly::constant(Rat::from(c)), &Poly::var(v))),
        (0usize..3, -2i64..3)
            .prop_map(|(v, c)| PolyConstraint::eq(&Poly::var(v), &Poly::constant(Rat::from(c)))),
    ]
}

fn poly_relation() -> impl Strategy<Value = Vec<Vec<PolyConstraint>>> {
    prop::collection::vec(prop::collection::vec(poly_constraint(), 0..3), 0..10)
}

// -------------------------------------------------------------- boolean

fn bool_term(bits: u16) -> BoolTerm {
    // Decode a small integer into a term over variables x0..x2: two
    // leaves combined by one of four connectives, each leaf possibly
    // negated.
    let leaf = |b: u16| {
        let t = BoolTerm::var((b & 0x3) as usize % 3);
        if b & 0x4 != 0 {
            t.not()
        } else {
            t
        }
    };
    let a = leaf(bits & 0x7);
    let b = leaf((bits >> 3) & 0x7);
    match (bits >> 6) & 0x3 {
        0 => a.and(b),
        1 => a.or(b),
        2 => a.xor(b),
        _ => a,
    }
}

fn bool_relation() -> impl Strategy<Value = Vec<Vec<BoolConstraint>>> {
    prop::collection::vec(
        prop::collection::vec(
            (0u16..256).prop_map(|bits| BoolConstraint::eq_zero(&bool_term(bits))),
            0..3,
        ),
        0..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_indexed_matches_quadratic(conjs in dense_relation()) {
        assert_modes_agree::<cql_dense::Dense>(4, &conjs);
    }

    #[test]
    fn equality_indexed_matches_quadratic(conjs in eq_relation()) {
        assert_modes_agree::<cql_equality::Equality>(4, &conjs);
    }

    #[test]
    fn poly_indexed_matches_quadratic(conjs in poly_relation()) {
        assert_modes_agree::<cql_poly::RealPoly>(3, &conjs);
    }

    #[test]
    fn boolean_indexed_matches_quadratic(conjs in bool_relation()) {
        assert_modes_agree::<cql_bool::BoolAlg>(3, &conjs);
    }

    #[test]
    fn dense_interning_is_transparent(conjs in dense_relation()) {
        assert_intern_transparent::<cql_dense::Dense>(&conjs);
    }

    #[test]
    fn equality_interning_is_transparent(conjs in eq_relation()) {
        assert_intern_transparent::<cql_equality::Equality>(&conjs);
    }
}

#[test]
fn indexed_up_to_degrades_to_dedup() {
    // IndexedUpTo(n): compression runs while the relation is small, then
    // inserts become dedup-only. The relation stays a superset of the
    // fully-compressed one and contains no exact duplicates.
    let policy = EnginePolicy::with_subsumption(SubsumptionMode::IndexedUpTo(2));
    let mut rel = GenRelation::<cql_dense::Dense>::with_policy(1, policy);
    for c in 0..4i64 {
        let t = GenTuple::new(vec![DenseConstraint::eq_const(0, c)]).unwrap();
        assert!(rel.insert(t.clone()));
        assert!(!rel.insert(t), "duplicate insert must be dropped in every mode");
    }
    // Past the cutoff inserts are dedup-only: `x ≤ 5` would evict every
    // `x = c` under full compression but here everything survives.
    let t = GenTuple::new(vec![DenseConstraint::le_const(0, 5)]).unwrap();
    assert!(rel.insert(t));
    assert_eq!(rel.len(), 5);

    let mut compressed = GenRelation::<cql_dense::Dense>::with_policy(
        1,
        EnginePolicy::with_subsumption(SubsumptionMode::Indexed),
    );
    for t in rel.tuples() {
        compressed.insert(t.clone());
    }
    assert_eq!(compressed.len(), 1);
}
