//! Incremental maintenance must be invisible: for randomized
//! insert/retract scripts over all four theories, a
//! [`MaterializedView`] tracks the from-scratch fixpoint exactly —
//! after *every* update the maintained IDB equals a fresh semi-naive
//! run over the currently asserted EDB, and at the end of each script
//! all three batch engines (naive / semi-naive / inflationary) agree
//! with the view.
//!
//! The scripts deliberately include the hard cases: retract followed by
//! re-insert of the same tuple (the dedup bookkeeping must forget
//! removed tuples), retraction of a tuple subsumed by a surviving one
//! (the subsumption-aware support counts must keep the survivor's
//! derivations alive), and non-point generalized tuples (half-lines,
//! wildcard columns, variable-equality cells) whose closures exercise
//! quantifier elimination rather than finite enumeration.
//!
//! Dense and equality run the recursive transitive closure; Datalog
//! over polynomial constraints is not closed in general (Example 1.12)
//! and the boolean worked examples live in `cql-bool`, so those two
//! theories run a non-recursive two-atom join program, which always
//! closes.

use cql_arith::{Poly, Rat};
use cql_bool::{BoolConstraint, BoolTerm};
use cql_core::relation::{Database, GenRelation, GenTuple};
use cql_core::theory::Theory;
use cql_dense::DenseConstraint;
use cql_engine::datalog::{self, Atom, FixpointOptions, Literal, MaterializedView, Program, Rule};
use cql_equality::EqConstraint;
use cql_poly::PolyConstraint;
use proptest::prelude::*;
use std::collections::HashSet;

/// Transitive closure: T(x,y) ← E(x,y); T(x,z) ← T(x,y), E(y,z).
fn tc_program<T: Theory>() -> Program<T> {
    Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 2]),
            vec![
                Literal::Pos(Atom::new("T", vec![0, 1])),
                Literal::Pos(Atom::new("E", vec![1, 2])),
            ],
        ),
    ])
}

/// Non-recursive join: H(x0,x4) ← A(x0,x1,x2), B(x2,x3,x4).
fn join_program<T: Theory>() -> Program<T> {
    Program::new(vec![Rule::new(
        Atom::new("H", vec![0, 4]),
        vec![
            Literal::Pos(Atom::new("A", vec![0, 1, 2])),
            Literal::Pos(Atom::new("B", vec![2, 3, 4])),
        ],
    )])
}

fn tuple_set<T: Theory>(r: Option<&GenRelation<T>>) -> HashSet<GenTuple<T>> {
    r.map(|r| r.tuples().iter().cloned().collect()).unwrap_or_default()
}

/// One update against the mutable EDB relation `updated` (the predicate
/// the script drives): `true` inserts, `false` retracts.
type Op<T> = (bool, GenTuple<T>);

/// Drive `ops` through a view and through from-scratch fixpoints in
/// lockstep. `fixed` holds the EDB relations the script never touches.
fn assert_view_tracks_batch<T: Theory>(
    program: &Program<T>,
    updated: &str,
    arity: usize,
    fixed: &[(&str, GenRelation<T>)],
    ops: &[Op<T>],
    out: &str,
) {
    let opts = FixpointOptions::default();
    let mut edb = Database::new();
    edb.insert(updated, GenRelation::empty(arity));
    for (name, rel) in fixed {
        edb.insert(*name, rel.clone());
    }
    let mut view = MaterializedView::new(program.clone(), &edb, opts).expect("view construction");
    // The asserted-set mirror the batch runs see. `GenRelation` with the
    // default policy compresses subsumed tuples, so the mirror is a plain
    // vector of exactly what the view was told.
    let mut asserted: Vec<GenTuple<T>> = Vec::new();
    for (insert, tuple) in ops {
        if *insert {
            view.insert(updated, tuple.clone()).expect("insert");
            if !asserted.contains(tuple) {
                asserted.push(tuple.clone());
            }
        } else if let Some(i) = asserted.iter().position(|t| t == tuple) {
            view.retract(updated, tuple).expect("retract");
            asserted.remove(i);
        } else {
            assert!(view.retract(updated, tuple).is_err(), "retract of absent tuple must fail");
            continue;
        }
        let mut rel = GenRelation::empty(arity);
        for t in &asserted {
            rel.insert(t.clone());
        }
        edb.insert(updated, rel);
        let batch = datalog::seminaive(program, &edb, &opts).expect("semi-naive baseline");
        assert_eq!(
            tuple_set(view.current().get(out)),
            tuple_set(batch.idb.get(out)),
            "view diverged from semi-naive after {} of {tuple}",
            if *insert { "insert" } else { "retract" },
        );
    }
    for run in [datalog::naive::<T>, datalog::seminaive::<T>, datalog::inflationary::<T>] {
        let batch = run(program, &edb, &opts).expect("batch baseline");
        assert_eq!(
            tuple_set(view.current().get(out)),
            tuple_set(batch.idb.get(out)),
            "view diverged from a batch engine at end of script"
        );
    }
}

// ------------------------------------------------------- op strategies

/// Dense edges: points, half-lines (second endpoint one-sided) and
/// wildcard-source edges, so subsumption between EDB tuples arises.
fn dense_edge() -> impl Strategy<Value = GenTuple<cql_dense::Dense>> {
    (0u8..3, 0i64..4, 0i64..4).prop_map(|(kind, a, b)| {
        let conj = match kind {
            0 => vec![DenseConstraint::eq_const(0, a), DenseConstraint::eq_const(1, b)],
            1 => vec![DenseConstraint::eq_const(0, a), DenseConstraint::ge_const(1, b)],
            _ => vec![DenseConstraint::eq_const(1, b)],
        };
        GenTuple::new(conj).expect("satisfiable edge")
    })
}

/// Equality edges: points, one-sided wildcards, and the diagonal cell.
fn eq_edge() -> impl Strategy<Value = GenTuple<cql_equality::Equality>> {
    (0u8..3, 0i64..4, 0i64..4).prop_map(|(kind, a, b)| {
        let conj = match kind {
            0 => vec![EqConstraint::eq_const(0, a), EqConstraint::eq_const(1, b)],
            1 => vec![EqConstraint::eq_const(0, a)],
            _ => vec![EqConstraint::eq(0, 1)],
        };
        GenTuple::new(conj).expect("satisfiable edge")
    })
}

fn poly_tuple() -> impl Strategy<Value = Option<GenTuple<cql_poly::RealPoly>>> {
    prop::collection::vec(
        (0u8..3, 0usize..3, -2i64..3).prop_map(|(kind, v, c)| {
            let (var, con) = (Poly::var(v), Poly::constant(Rat::from(c)));
            match kind {
                0 => PolyConstraint::le(&var, &con),
                1 => PolyConstraint::le(&con, &var),
                _ => PolyConstraint::eq(&var, &con),
            }
        }),
        1..3,
    )
    .prop_map(GenTuple::new)
}

fn bool_tuple() -> impl Strategy<Value = Option<GenTuple<cql_bool::BoolAlg>>> {
    prop::collection::vec(
        (0usize..3, any::<bool>(), 0usize..3, any::<bool>()).prop_map(|(a, na, b, nb)| {
            let lhs = if na { BoolTerm::var(a).not() } else { BoolTerm::var(a) };
            let rhs = if nb { BoolTerm::var(b).not() } else { BoolTerm::var(b) };
            BoolConstraint::eq_zero(&lhs.and(rhs))
        }),
        1..3,
    )
    .prop_map(GenTuple::new)
}

fn script<T: Theory>(
    tuples: impl Strategy<Value = GenTuple<T>>,
) -> impl Strategy<Value = Vec<Op<T>>> {
    prop::collection::vec((any::<bool>(), tuples), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_tc_view_tracks_batch(ops in script(dense_edge())) {
        assert_view_tracks_batch(&tc_program(), "E", 2, &[], &ops, "T");
    }

    #[test]
    fn equality_tc_view_tracks_batch(ops in script(eq_edge())) {
        assert_view_tracks_batch(&tc_program(), "E", 2, &[], &ops, "T");
    }

    #[test]
    fn poly_join_view_tracks_batch(
        ops in prop::collection::vec((any::<bool>(), poly_tuple()), 1..8),
        fixed in prop::collection::vec(poly_tuple(), 1..4),
    ) {
        let ops: Vec<_> = ops.into_iter().filter_map(|(i, t)| Some((i, t?))).collect();
        let mut b = GenRelation::empty(3);
        for t in fixed.into_iter().flatten() {
            b.insert(t);
        }
        assert_view_tracks_batch(&join_program(), "A", 3, &[("B", b)], &ops, "H");
    }

    #[test]
    fn bool_join_view_tracks_batch(
        ops in prop::collection::vec((any::<bool>(), bool_tuple()), 1..8),
        fixed in prop::collection::vec(bool_tuple(), 1..4),
    ) {
        let ops: Vec<_> = ops.into_iter().filter_map(|(i, t)| Some((i, t?))).collect();
        let mut b = GenRelation::empty(3);
        for t in fixed.into_iter().flatten() {
            b.insert(t);
        }
        assert_view_tracks_batch(&join_program(), "A", 3, &[("B", b)], &ops, "H");
    }
}

// ------------------------------------------------ deterministic cases

/// Retracting a tuple that a surviving tuple subsumes must not disturb
/// the view (the survivor's derivations entail everything the retracted
/// tuple contributed), and retracting the *subsuming* tuple must fall
/// back to exactly the narrow tuple's closure.
#[test]
fn retraction_of_a_subsumed_tuple_is_subsumption_aware() {
    let narrow = GenTuple::<cql_dense::Dense>::new(vec![
        DenseConstraint::eq_const(0, 0),
        DenseConstraint::eq_const(1, 1),
    ])
    .unwrap();
    let broad = GenTuple::new(vec![DenseConstraint::eq_const(0, 0)]).unwrap();
    for retract_first in [&narrow, &broad] {
        let ops = vec![
            (true, narrow.clone()),
            (true, broad.clone()),
            (false, retract_first.clone()),
            (true, retract_first.clone()),
        ];
        assert_view_tracks_batch(&tc_program(), "E", 2, &[], &ops, "T");
    }
}

/// Retract-then-reinsert across a recursive closure for the equality
/// theory, where the diagonal cell E(x,x) keeps every chain derivable
/// in two distinct ways.
#[test]
fn equality_retract_then_reinsert_with_diagonal() {
    let diag = GenTuple::<cql_equality::Equality>::new(vec![EqConstraint::eq(0, 1)]).unwrap();
    let edge = |a: i64, b: i64| {
        GenTuple::new(vec![EqConstraint::eq_const(0, a), EqConstraint::eq_const(1, b)]).unwrap()
    };
    let ops = vec![
        (true, edge(0, 1)),
        (true, diag.clone()),
        (true, edge(1, 2)),
        (false, diag.clone()),
        (false, edge(0, 1)),
        (true, edge(0, 1)),
        (true, diag),
    ];
    assert_view_tracks_batch(&tc_program(), "E", 2, &[], &ops, "T");
}
