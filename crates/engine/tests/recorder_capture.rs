//! Flight-recorder exactness and SLO-watchdog end-to-end checks.
//!
//! Companion to `histogram_merge.rs` for the always-compiled runtime
//! recorder: span events captured into a [`MetricsScope`]'s per-thread
//! rings ride the same merge-on-drop fold as the counters, so with
//! sampling off (mode `Always`) the multiset of captured span names is
//! identical at any executor width — except for the executor's own
//! `executor.batch`/`executor.worker` spans, whose count is by
//! construction a function of the width.
//!
//! The second test drives the watchdog end to end: an armed
//! `view_update_ns p99 < 1ms` rule plus one injected 2× slowdown sample
//! must produce a breach at scope drop, and the frozen rings must dump
//! to a chrome-trace file that round-trips through the in-repo parser.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

use cql_core::theory::Theory;
use cql_core::{Database, GenRelation, GenTuple};
use cql_dense::{Dense, DenseConstraint};
use cql_engine::datalog::{self, Atom, FixpointOptions, Literal, MaterializedView, Program, Rule};
use cql_engine::trace::recorder::{self, RecorderConfig};
use cql_engine::trace::watchdog::{self, SloRule};
use cql_engine::trace::{chrome, hist, record_hist, MetricsScope};

/// Recorder mode, rules and rings are process-global; serialize the
/// tests that reconfigure them.
static RECORDER_TESTS: Mutex<()> = Mutex::new(());

fn tc_program<T: Theory>() -> Program<T> {
    Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 1]),
            vec![
                Literal::Pos(Atom::new("T", vec![0, 2])),
                Literal::Pos(Atom::new("E", vec![2, 1])),
            ],
        ),
    ])
}

fn chain_db<T: Theory>(values: &[T::Value]) -> Database<T> {
    let mut db = Database::new();
    db.insert(
        "E",
        GenRelation::from_conjunctions(
            2,
            values.windows(2).map(|w| vec![T::var_const_eq(0, &w[0]), T::var_const_eq(1, &w[1])]),
        ),
    );
    db
}

/// The multiset of `(name, cat)` pairs the recorder captured for one
/// scoped fixpoint, with the width-dependent executor spans filtered
/// out.
fn captured_multiset(threads: usize) -> BTreeMap<(String, String), usize> {
    let scope = MetricsScope::enter("capture");
    let opts = FixpointOptions { threads, ..Default::default() };
    let program = tc_program::<Dense>();
    let values: Vec<cql_arith::Rat> = (0..6).map(cql_arith::Rat::from).collect();
    let db = chain_db::<Dense>(&values);
    datalog::seminaive(&program, &db, &opts).expect("fixpoint converges");
    let events = scope.handle().take_events();
    let mut multiset = BTreeMap::new();
    for event in &events {
        let name = recorder::resolve_label(event.label).to_string();
        let cat = recorder::resolve_label(event.cat).to_string();
        if name.starts_with("executor.") {
            continue; // batch/worker span counts are width-dependent
        }
        *multiset.entry((name, cat)).or_insert(0) += 1;
    }
    multiset
}

#[test]
fn capture_multiset_is_width_invariant_with_sampling_off() {
    let _serial = RECORDER_TESTS.lock().unwrap_or_else(PoisonError::into_inner);
    recorder::set_ring_capacity(1 << 16);
    recorder::set_config(RecorderConfig::Always);
    let reference = captured_multiset(1);
    assert!(
        reference.keys().any(|(name, _)| name == "fixpoint.round"),
        "no fixpoint rounds captured — the test is vacuous: {reference:?}"
    );
    assert!(
        reference.keys().any(|(name, _)| name == "multiway.join"),
        "recursive rule must take the multiway path: {reference:?}"
    );
    for width in [4, 8] {
        let multiset = captured_multiset(width);
        assert_eq!(reference, multiset, "capture multiset diverged at width {width}");
    }
    recorder::set_config(RecorderConfig::Off);
    let (_, dropped) = recorder::totals();
    assert_eq!(dropped, 0, "rings sized for the workload must not drop events");
}

#[test]
fn injected_slowdown_trips_watchdog_and_dumps_parseable_trace() {
    let _serial = RECORDER_TESTS.lock().unwrap_or_else(PoisonError::into_inner);
    recorder::set_ring_capacity(1 << 16);
    recorder::set_config(RecorderConfig::Always);
    let dump_dir = std::env::temp_dir().join("cql-recorder-capture-test");
    let _ = std::fs::remove_dir_all(&dump_dir);
    watchdog::set_dump_dir(Some(dump_dir.clone()));
    watchdog::set_rules(vec![SloRule::parse("view_update_ns p99 < 1ms").expect("rule parses")]);
    let _ = watchdog::take_breaches(); // drop stale history

    let breaches = {
        let scope = MetricsScope::enter("view-maint");
        let opts = FixpointOptions { threads: 1, ..Default::default() };
        let program = tc_program::<Dense>();
        let mut edb = Database::new();
        edb.insert("E", GenRelation::<Dense>::empty(2));
        let mut view = MaterializedView::new(program, &edb, opts).expect("view construction");
        let edge =
            GenTuple::new(vec![DenseConstraint::eq_const(0, 1), DenseConstraint::eq_const(1, 2)])
                .expect("satisfiable edge");
        view.insert("E", edge).expect("insert propagates");
        // Inject a 2× slowdown over the declared 1ms objective: a real
        // pathological update would record exactly such a sample.
        record_hist(hist::VIEW_UPDATE_NS, 2_000_000);
        drop(scope); // the at-drop check runs here
        watchdog::take_breaches()
    };
    recorder::set_config(RecorderConfig::Off);
    watchdog::clear_rules();
    watchdog::set_dump_dir(None);

    let breach = breaches
        .iter()
        .find(|b| b.scope == "view-maint" && b.hist == "view_update_ns")
        .expect("injected slowdown must trip the armed rule");
    assert!(breach.observed >= 1_000_000, "p99 must reflect the injected sample");
    assert_eq!(breach.dump_error, None, "dump must succeed: {:?}", breach.dump_error);
    let path = breach.dump_path.as_ref().expect("dump path recorded");
    assert!(breach.events_dumped > 0, "frozen rings must hold the view-update spans");
    let text = std::fs::read_to_string(path).expect("dump file exists");
    let events = chrome::parse(&text).expect("dump parses as a chrome trace");
    assert_eq!(events.len(), breach.events_dumped);
    assert!(
        events.iter().any(|e| e.name == "view.insert"),
        "dump must contain the recorded view-update span"
    );
    assert_eq!(chrome::nesting_violation(&events), None, "dumped spans must nest strictly");
    let _ = std::fs::remove_dir_all(&dump_dir);
}
