//! Filter-before-solve must be invisible: for randomized instances of
//! all four theories, summary-pruned operators (join / intersect /
//! select) and summary-pruned + QE-cached fixpoints produce exactly the
//! results of exhaustive enumeration; and every `Theory::summary`
//! implementation obeys the soundness law
//! `sat(a ∧ b) ⇒ summary(a).may_intersect(summary(b))`, checked against
//! the theory's own decision procedure.
//!
//! Fixpoint equivalence runs on the dense and equality theories: Datalog
//! over polynomial constraints is not closed (Example 1.12), and the
//! boolean theories are covered by the operator tests (their Datalog
//! worked examples live in `cql-bool`).
//!
//! The multiway-join block at the bottom pins the three-way equality
//! `multiway == binary-pruned == exhaustive` for all four theories: the
//! recursive 3-atom path-join exercises naive, semi-naive and
//! inflationary fixpoints (dense/equality, with the cell-based Herbrand
//! engine as an independent pointwise oracle), and non-recursive
//! multi-atom joins cover the polynomial and boolean theories, whose
//! recursive programs need not close.

use cql_arith::{Poly, Rat};
use cql_bool::{BoolConstraint, BoolTerm};
use cql_core::relation::{Database, GenRelation, GenTuple};
use cql_core::summary::ConstraintSummary;
use cql_core::theory::Theory;
use cql_core::EnginePolicy;
use cql_dense::DenseConstraint;
use cql_engine::datalog::{self, Atom, FixpointOptions, Literal, Program, Rule};
use cql_engine::{algebra, Engine};
use cql_equality::EqConstraint;
use cql_poly::PolyConstraint;
use proptest::prelude::*;
use std::collections::HashSet;

// ------------------------------------------------------- soundness law

/// Check the summary soundness law on one pair of raw conjunctions,
/// using the theory's canonicalizer as the satisfiability oracle.
fn assert_summary_sound<T: Theory>(a: &[T::Constraint], b: &[T::Constraint]) {
    // The law is stated over canonical conjunctions (what the engine
    // actually summarizes); unsatisfiable inputs have no canonical form.
    let (Some(ca), Some(cb)) = (T::canonicalize(a), T::canonicalize(b)) else {
        return;
    };
    let mut both = ca.clone();
    both.extend(cb.iter().cloned());
    if T::canonicalize(&both).is_some() {
        assert!(
            T::summary(&ca).may_intersect(&T::summary(&cb)),
            "summary refuted a satisfiable pair:\n  a = {ca:?}\n  b = {cb:?}"
        );
        // Point-witness flavor of the same law: a sample of a ∧ b
        // satisfies both sides, so the summaries must meet (already
        // asserted above; this documents why the law is point-wise).
        if let Some(point) = T::sample(&both, 4) {
            assert!(ca.iter().chain(&cb).all(|c| T::eval(c, &point)));
        }
    }
}

// ------------------------------------------ pruned operator equivalence

fn tuple_set<T: Theory>(r: &GenRelation<T>) -> HashSet<GenTuple<T>> {
    r.tuples().iter().cloned().collect()
}

/// Run join / intersect / select with pruning+caching on and off and
/// require identical result sets. (Insertion order may differ — the
/// index enumerates candidates in bucket order — so relations are
/// compared as sets of canonical tuples.)
fn assert_pruning_invisible<T: Theory>(
    arity: usize,
    a: &[Vec<T::Constraint>],
    b: &[Vec<T::Constraint>],
    sel: &[T::Constraint],
) {
    let ra = GenRelation::<T>::from_conjunctions(arity, a.to_vec());
    let rb = GenRelation::<T>::from_conjunctions(arity, b.to_vec());
    let on: Engine<T> =
        Engine::new(cql_engine::Executor::serial(), EnginePolicy::default().with_filtering(true));
    let off: Engine<T> =
        Engine::new(cql_engine::Executor::serial(), EnginePolicy::default().with_filtering(false));

    let join_on = algebra::join_with(&on, &ra, &rb, &[(arity - 1, 0)]);
    let join_off = algebra::join_with(&off, &ra, &rb, &[(arity - 1, 0)]);
    assert_eq!(tuple_set(&join_on), tuple_set(&join_off), "join diverged under pruning");

    let int_on = algebra::intersect_with(&on, &ra, &rb);
    let int_off = algebra::intersect_with(&off, &ra, &rb);
    assert_eq!(tuple_set(&int_on), tuple_set(&int_off), "intersect diverged under pruning");

    let sel_on = algebra::select_with(&on, &ra, sel);
    let sel_off = algebra::select_with(&off, &ra, sel);
    assert_eq!(tuple_set(&sel_on), tuple_set(&sel_off), "select diverged under pruning");
}

// --------------------------------------------- pruned fixpoint equivalence

/// Transitive closure: T(x,y) ← E(x,y); T(x,z) ← E(x,y), T(y,z).
fn tc_program<T: Theory>() -> Program<T> {
    Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 2]),
            vec![
                Literal::Pos(Atom::new("E", vec![0, 1])),
                Literal::Pos(Atom::new("T", vec![1, 2])),
            ],
        ),
    ])
}

fn fixpoint_opts(filtering: bool) -> FixpointOptions {
    FixpointOptions {
        policy: EnginePolicy::default().with_filtering(filtering),
        ..Default::default()
    }
}

/// Naive and semi-naive fixpoints over a random edge list must not see
/// the filtering knobs.
fn assert_fixpoint_invisible<T: Theory>(edb: Database<T>) {
    let program = tc_program::<T>();
    for run in [datalog::naive::<T>, datalog::seminaive::<T>] {
        let on = run(&program, &edb, &fixpoint_opts(true)).expect("fixpoint (filtering on)");
        let off = run(&program, &edb, &fixpoint_opts(false)).expect("fixpoint (filtering off)");
        assert_eq!(
            tuple_set(on.idb.get("T").expect("T")),
            tuple_set(off.idb.get("T").expect("T")),
            "fixpoint diverged under filtering"
        );
    }
}

fn dense_edge_db(edges: &[(i64, i64)]) -> Database<cql_dense::Dense> {
    let mut db = Database::new();
    db.insert(
        "E",
        GenRelation::from_conjunctions(
            2,
            edges
                .iter()
                .map(|&(a, b)| {
                    vec![DenseConstraint::eq_const(0, a), DenseConstraint::eq_const(1, b)]
                })
                .collect::<Vec<_>>(),
        ),
    );
    db
}

fn eq_edge_db(edges: &[(i64, i64)]) -> Database<cql_equality::Equality> {
    let mut db = Database::new();
    db.insert(
        "E",
        GenRelation::from_conjunctions(
            2,
            edges
                .iter()
                .map(|&(a, b)| vec![EqConstraint::eq_const(0, a), EqConstraint::eq_const(1, b)])
                .collect::<Vec<_>>(),
        ),
    );
    db
}

// ------------------------------------------------- constraint strategies

fn dense_constraint() -> impl Strategy<Value = DenseConstraint> {
    prop_oneof![
        (0usize..3, 0usize..3).prop_map(|(a, b)| DenseConstraint::lt(a, b)),
        (0usize..3, 0usize..3).prop_map(|(a, b)| DenseConstraint::eq(a, b)),
        (0usize..3, -2i64..3).prop_map(|(v, c)| DenseConstraint::le_const(v, c)),
        (0usize..3, -2i64..3).prop_map(|(v, c)| DenseConstraint::ge_const(v, c)),
        (0usize..3, -2i64..3).prop_map(|(v, c)| DenseConstraint::eq_const(v, c)),
        (0usize..3, -2i64..3).prop_map(|(v, c)| DenseConstraint::ne_const(v, c)),
    ]
}

fn dense_relation() -> impl Strategy<Value = Vec<Vec<DenseConstraint>>> {
    prop::collection::vec(prop::collection::vec(dense_constraint(), 0..4), 0..10)
}

fn eq_constraint() -> impl Strategy<Value = EqConstraint> {
    prop_oneof![
        (0usize..3, 0usize..3).prop_map(|(a, b)| EqConstraint::eq(a, b)),
        (0usize..3, 0usize..3).prop_map(|(a, b)| EqConstraint::ne(a, b)),
        (0usize..3, 0i64..3).prop_map(|(v, c)| EqConstraint::eq_const(v, c)),
        (0usize..3, 0i64..3).prop_map(|(v, c)| EqConstraint::ne_const(v, c)),
    ]
}

fn eq_relation() -> impl Strategy<Value = Vec<Vec<EqConstraint>>> {
    prop::collection::vec(prop::collection::vec(eq_constraint(), 0..4), 0..10)
}

fn poly_constraint() -> impl Strategy<Value = PolyConstraint> {
    prop_oneof![
        (0usize..3, -2i64..3)
            .prop_map(|(v, c)| PolyConstraint::le(&Poly::var(v), &Poly::constant(Rat::from(c)))),
        (0usize..3, -2i64..3)
            .prop_map(|(v, c)| PolyConstraint::le(&Poly::constant(Rat::from(c)), &Poly::var(v))),
        (0usize..3, -2i64..3)
            .prop_map(|(v, c)| PolyConstraint::eq(&Poly::var(v), &Poly::constant(Rat::from(c)))),
        (0usize..3, -2i64..3)
            .prop_map(|(v, c)| PolyConstraint::lt(&Poly::var(v), &Poly::constant(Rat::from(c)))),
    ]
}

fn poly_relation() -> impl Strategy<Value = Vec<Vec<PolyConstraint>>> {
    prop::collection::vec(prop::collection::vec(poly_constraint(), 0..3), 0..8)
}

fn bool_term(bits: u16) -> BoolTerm {
    let leaf = |b: u16| {
        let t = BoolTerm::var((b & 0x3) as usize % 3);
        if b & 0x4 != 0 {
            t.not()
        } else {
            t
        }
    };
    let a = leaf(bits & 0x7);
    let b = leaf((bits >> 3) & 0x7);
    match (bits >> 6) & 0x3 {
        0 => a.and(b),
        1 => a.or(b),
        2 => a.xor(b),
        _ => a,
    }
}

fn bool_conj() -> impl Strategy<Value = Vec<BoolConstraint>> {
    prop::collection::vec(
        (0u16..256).prop_map(|bits| BoolConstraint::eq_zero(&bool_term(bits))),
        0..3,
    )
}

fn bool_relation() -> impl Strategy<Value = Vec<Vec<BoolConstraint>>> {
    prop::collection::vec(bool_conj(), 0..8)
}

fn edge_list() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..6, 0i64..6), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_summary_is_sound(a in prop::collection::vec(dense_constraint(), 0..4),
                              b in prop::collection::vec(dense_constraint(), 0..4)) {
        assert_summary_sound::<cql_dense::Dense>(&a, &b);
    }

    #[test]
    fn equality_summary_is_sound(a in prop::collection::vec(eq_constraint(), 0..4),
                                 b in prop::collection::vec(eq_constraint(), 0..4)) {
        assert_summary_sound::<cql_equality::Equality>(&a, &b);
    }

    #[test]
    fn poly_summary_is_sound(a in prop::collection::vec(poly_constraint(), 0..4),
                             b in prop::collection::vec(poly_constraint(), 0..4)) {
        assert_summary_sound::<cql_poly::RealPoly>(&a, &b);
    }

    #[test]
    fn bool_summary_is_sound(a in bool_conj(), b in bool_conj()) {
        assert_summary_sound::<cql_bool::BoolAlg>(&a, &b);
        assert_summary_sound::<cql_bool::BoolAlgFree>(&a, &b);
    }

    #[test]
    fn dense_pruned_operators_match_exhaustive(a in dense_relation(), b in dense_relation()) {
        let sel = [DenseConstraint::le_const(0, 1)];
        assert_pruning_invisible::<cql_dense::Dense>(3, &a, &b, &sel);
    }

    #[test]
    fn equality_pruned_operators_match_exhaustive(a in eq_relation(), b in eq_relation()) {
        let sel = [EqConstraint::eq_const(0, 1)];
        assert_pruning_invisible::<cql_equality::Equality>(3, &a, &b, &sel);
    }

    #[test]
    fn poly_pruned_operators_match_exhaustive(a in poly_relation(), b in poly_relation()) {
        let sel = [PolyConstraint::le(&Poly::var(0), &Poly::constant(Rat::from(1)))];
        assert_pruning_invisible::<cql_poly::RealPoly>(3, &a, &b, &sel);
    }

    #[test]
    fn bool_pruned_operators_match_exhaustive(a in bool_relation(), b in bool_relation()) {
        let sel = [BoolConstraint::eq_zero(&bool_term(0))];
        assert_pruning_invisible::<cql_bool::BoolAlg>(3, &a, &b, &sel);
    }

    #[test]
    fn dense_pruned_fixpoint_matches_exhaustive(edges in edge_list()) {
        assert_fixpoint_invisible(dense_edge_db(&edges));
    }

    #[test]
    fn equality_pruned_fixpoint_matches_exhaustive(edges in edge_list()) {
        assert_fixpoint_invisible(eq_edge_db(&edges));
    }
}

/// The QE memo cache is a pure memo: repeated elimination of one
/// conjunction hits the cache and returns the identical DNF.
#[test]
fn qe_cache_hits_and_is_transparent() {
    use cql_engine::trace::{Counter, MetricsScope};
    let engine: Engine<cql_dense::Dense> = Engine::serial();
    let conj =
        vec![DenseConstraint::lt(0, 1), DenseConstraint::lt(1, 2), DenseConstraint::eq_const(0, 3)];
    let scope = MetricsScope::enter("qe-cache-test");
    let first = engine.eliminate_cached(&conj, 1).expect("eliminate");
    let second = engine.eliminate_cached(&conj, 1).expect("eliminate again");
    assert_eq!(first, second);
    let snap = scope.snapshot();
    assert_eq!(snap.get(Counter::QeCacheHits), 1, "second elimination must hit the cache");
    assert_eq!(engine.qe_cache().len(), 1);

    // With the knob off, the cache is bypassed entirely.
    let off: Engine<cql_dense::Dense> =
        Engine::new(cql_engine::Executor::serial(), EnginePolicy::default().with_filtering(false));
    let scope = MetricsScope::enter("qe-cache-off");
    let direct = off.eliminate_cached(&conj, 1).expect("eliminate uncached");
    assert_eq!(direct, first);
    assert_eq!(scope.snapshot().get(Counter::QeCacheHits), 0);
    assert!(off.qe_cache().is_empty());
}

// ---------------------------------------------- multiway join equivalence

/// Path-join program: a recursive rule with a 3-atom body (the E17
/// shape), so the multiway planner has real join variables to order.
fn path3_program<T: Theory>() -> Program<T> {
    Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 3]),
            vec![
                Literal::Pos(Atom::new("T", vec![0, 1])),
                Literal::Pos(Atom::new("E", vec![1, 2])),
                Literal::Pos(Atom::new("E", vec![2, 3])),
            ],
        ),
    ])
}

/// The three body-join configurations that must be indistinguishable:
/// multiway (the default), binary-pruned (multiway off, pruning on — the
/// pre-refactor path), and exhaustive enumeration (no filtering at all).
fn join_configs() -> [(&'static str, EnginePolicy); 3] {
    [
        ("multiway", EnginePolicy::default()),
        ("binary", EnginePolicy::default().with_multiway(false)),
        ("exhaustive", EnginePolicy::default().with_filtering(false)),
    ]
}

/// Every symbolic fixpoint engine must produce the identical tuple set
/// for `head` under all three join configurations.
fn assert_multiway_invisible<T: Theory>(program: &Program<T>, edb: &Database<T>, head: &str) {
    type Run<T> = fn(
        &Program<T>,
        &Database<T>,
        &FixpointOptions,
    ) -> cql_core::error::Result<datalog::FixpointResult<T>>;
    let engines: [(&str, Run<T>); 3] = [
        ("naive", datalog::naive::<T>),
        ("seminaive", datalog::seminaive::<T>),
        ("inflationary", datalog::inflationary::<T>),
    ];
    for (engine_name, run) in engines {
        let results: Vec<(&str, HashSet<GenTuple<T>>)> = join_configs()
            .into_iter()
            .map(|(config, policy)| {
                let opts = FixpointOptions { policy, ..Default::default() };
                let r = run(program, edb, &opts)
                    .unwrap_or_else(|e| panic!("{engine_name}/{config} failed: {e:?}"));
                (config, tuple_set(r.idb.get(head).expect("head relation")))
            })
            .collect();
        let (reference_name, reference) = &results[0];
        for (config, set) in &results[1..] {
            assert_eq!(
                reference, set,
                "{engine_name}: {reference_name} and {config} joins diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_multiway_fixpoint_matches_binary_and_exhaustive(edges in edge_list()) {
        assert_multiway_invisible(
            &path3_program::<cql_dense::Dense>(),
            &dense_edge_db(&edges),
            "T",
        );
    }

    #[test]
    fn equality_multiway_fixpoint_matches_binary_and_exhaustive(edges in edge_list()) {
        assert_multiway_invisible(
            &path3_program::<cql_equality::Equality>(),
            &eq_edge_db(&edges),
            "T",
        );
    }

    /// The cell-based Herbrand engine never touches `fire_rule`, which
    /// makes it an independent oracle: the multiway symbolic fixpoint
    /// must agree with it pointwise on the integer grid.
    #[test]
    fn dense_multiway_matches_herbrand_cells(edges in edge_list()) {
        let program = path3_program::<cql_dense::Dense>();
        let edb = dense_edge_db(&edges);
        let opts = FixpointOptions::default();
        let symbolic = datalog::naive(&program, &edb, &opts).expect("symbolic fixpoint");
        let cells = datalog::cell_naive(&program, &edb, &opts).expect("cell fixpoint");
        let t = symbolic.idb.get("T").expect("T");
        let tc = cells.idb.get("T").expect("T");
        for a in 0..6i64 {
            for b in 0..6i64 {
                let p = [Rat::from(a), Rat::from(b)];
                prop_assert_eq!(t.satisfied_by(&p), tc.satisfied_by(&p), "at ({},{})", a, b);
            }
        }
    }

    #[test]
    fn equality_multiway_matches_herbrand_cells(edges in edge_list()) {
        let program = path3_program::<cql_equality::Equality>();
        let edb = eq_edge_db(&edges);
        let opts = FixpointOptions::default();
        let symbolic = datalog::naive(&program, &edb, &opts).expect("symbolic fixpoint");
        let cells = datalog::cell_naive(&program, &edb, &opts).expect("cell fixpoint");
        let t = symbolic.idb.get("T").expect("T");
        let tc = cells.idb.get("T").expect("T");
        for a in 0..6i64 {
            for b in 0..6i64 {
                prop_assert_eq!(t.satisfied_by(&[a, b]), tc.satisfied_by(&[a, b]), "at ({},{})", a, b);
            }
        }
    }

    /// Recursive polynomial Datalog need not close (Example 1.12), so the
    /// polynomial theory is covered by a non-recursive multi-atom join.
    #[test]
    fn poly_multiway_join_matches_binary_and_exhaustive(
        a in poly_relation(),
        b in poly_relation(),
    ) {
        let mut edb = Database::new();
        edb.insert("A", GenRelation::<cql_poly::RealPoly>::from_conjunctions(3, a));
        edb.insert("B", GenRelation::from_conjunctions(3, b));
        let program: Program<cql_poly::RealPoly> = Program::new(vec![Rule::new(
            Atom::new("H", vec![0, 4]),
            vec![
                Literal::Pos(Atom::new("A", vec![0, 1, 2])),
                Literal::Pos(Atom::new("B", vec![2, 3, 4])),
            ],
        )]);
        assert_multiway_invisible(&program, &edb, "H");
    }

    /// Boolean summaries carry no interval ranges, so every trie level
    /// degenerates to its catch-all bucket — this pins that the multiway
    /// path stays sound (and exact) when level pruning has nothing to
    /// offer.
    #[test]
    fn bool_multiway_join_matches_binary_and_exhaustive(
        a in bool_relation(),
        b in bool_relation(),
    ) {
        let mut edb = Database::new();
        edb.insert("A", GenRelation::<cql_bool::BoolAlg>::from_conjunctions(3, a));
        edb.insert("B", GenRelation::from_conjunctions(3, b));
        let program: Program<cql_bool::BoolAlg> = Program::new(vec![Rule::new(
            Atom::new("H", vec![0, 4]),
            vec![
                Literal::Pos(Atom::new("A", vec![0, 1, 2])),
                Literal::Pos(Atom::new("B", vec![2, 3, 4])),
            ],
        )]);
        assert_multiway_invisible(&program, &edb, "H");
    }
}
