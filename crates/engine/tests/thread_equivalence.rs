//! Worked-example equivalence under different engine configurations.
//!
//! Each test evaluates a paper example twice — once on the serial
//! reference engine, once on an engine whose executor comes from
//! [`Executor::from_env`] (honoring `CQL_ENGINE_THREADS`, which CI runs
//! at 1 and 4) — and requires identical results. A shared engine is also
//! reused across evaluations to check that interner hits are semantically
//! invisible.

use cql_arith::Rat;
use cql_core::{CalculusQuery, Database, Formula, GenRelation};
use cql_dense::{Dense, DenseConstraint as C};
use cql_engine::datalog::{self, Atom, FixpointOptions, Literal, Program, Rule};
use cql_engine::{calculus, Engine, Executor};
use cql_equality::{EqConstraint, Equality};

/// The rectangles database of Example 1.1: R(z, x, y) holds when point
/// (x, y) lies in rectangle z.
fn rectangles_db() -> Database<Dense> {
    let mut db = Database::new();
    db.insert(
        "R",
        GenRelation::from_conjunctions(
            3,
            vec![
                vec![
                    C::eq_const(0, 1),
                    C::ge_const(1, 0),
                    C::le_const(1, 2),
                    C::ge_const(2, 0),
                    C::le_const(2, 2),
                ],
                vec![
                    C::eq_const(0, 2),
                    C::ge_const(1, 1),
                    C::le_const(1, 3),
                    C::ge_const(2, 1),
                    C::le_const(2, 3),
                ],
                vec![
                    C::eq_const(0, 3),
                    C::ge_const(1, 5),
                    C::le_const(1, 6),
                    C::ge_const(2, 5),
                    C::le_const(2, 6),
                ],
            ],
        ),
    );
    db
}

/// {(n1, n2) | n1 ≠ n2 ∧ ∃x,y (R(n1,x,y) ∧ R(n2,x,y))} — which pairs of
/// rectangles intersect (§2.1 worked example).
fn intersecting_rectangles() -> CalculusQuery<Dense> {
    CalculusQuery::new(
        Formula::constraint(C::ne(0, 1)).and(
            Formula::atom("R", vec![0, 2, 3])
                .and(Formula::atom("R", vec![1, 2, 3]))
                .exists_all(&[2, 3]),
        ),
        vec![0, 1],
    )
    .unwrap()
}

#[test]
fn calculus_parallel_matches_serial() {
    let db = rectangles_db();
    let q = intersecting_rectangles();
    let serial = calculus::evaluate(&q, &db).expect("serial evaluation");
    let engine: Engine<Dense> = Engine::new(Executor::from_env(), Default::default());
    let parallel = calculus::evaluate_with(&engine, &q, &db).expect("parallel evaluation");
    assert_eq!(serial, parallel);
    assert!(serial.satisfied_by(&[Rat::from(1), Rat::from(2)]));
    assert!(!serial.satisfied_by(&[Rat::from(1), Rat::from(3)]));
}

#[test]
fn shared_engine_interner_hits_are_invisible() {
    let db = rectangles_db();
    let q = intersecting_rectangles();
    let engine: Engine<Dense> = Engine::serial();
    let first = calculus::evaluate_with(&engine, &q, &db).expect("first evaluation");
    let scope = cql_engine::trace::MetricsScope::enter("second-evaluation");
    let second = calculus::evaluate_with(&engine, &q, &db).expect("second evaluation");
    let hits = scope.snapshot().get(cql_engine::trace::Counter::InternHits);
    assert_eq!(first, second);
    assert!(hits > 0, "re-evaluating on a shared engine should hit the interner");
}

/// Transitive closure over an equality-theory edge list.
fn tc_program() -> Program<Equality> {
    Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 2]),
            vec![
                Literal::Pos(Atom::new("E", vec![0, 1])),
                Literal::Pos(Atom::new("T", vec![1, 2])),
            ],
        ),
    ])
}

fn chain_edb(n: i64) -> Database<Equality> {
    let mut db = Database::new();
    db.insert(
        "E",
        GenRelation::from_conjunctions(
            2,
            (0..n)
                .map(|i| vec![EqConstraint::eq_const(0, i), EqConstraint::eq_const(1, i + 1)])
                .collect::<Vec<_>>(),
        ),
    );
    db
}

#[test]
fn seminaive_thread_count_is_invisible() {
    let program = tc_program();
    let edb = chain_edb(12);
    let serial =
        datalog::seminaive(&program, &edb, &FixpointOptions::default()).expect("serial fixpoint");
    let opts = FixpointOptions { threads: Executor::from_env().threads(), ..Default::default() };
    let threaded = datalog::seminaive(&program, &edb, &opts).expect("threaded fixpoint");
    assert_eq!(serial.idb.get("T"), threaded.idb.get("T"));
    let t = threaded.idb.get("T").expect("T derived");
    assert!(t.satisfied_by(&[0, 12]));
    assert!(!t.satisfied_by(&[12, 0]));
}

#[test]
fn naive_thread_count_is_invisible() {
    let program = tc_program();
    let edb = chain_edb(8);
    let serial =
        datalog::naive(&program, &edb, &FixpointOptions::default()).expect("serial fixpoint");
    let opts = FixpointOptions { threads: Executor::from_env().threads(), ..Default::default() };
    let threaded = datalog::naive(&program, &edb, &opts).expect("threaded fixpoint");
    assert_eq!(serial.idb.get("T"), threaded.idb.get("T"));
}
