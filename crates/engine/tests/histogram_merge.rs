//! Histogram exactness under the parallel executor.
//!
//! Companion to `metrics_scope.rs` for the telemetry histograms: a
//! [`MetricsScope`] entered on the issuing thread captures *exactly* the
//! samples recorded on its behalf, no matter how many worker threads the
//! [`Executor`] fans out to — per-round and per-worker shards fold into
//! the issuing scope on drop with bucket-exact [`Histogram::merge`], so
//! the merged result is identical to the single-threaded one. Wall-time
//! histograms can't be compared bucket-for-bucket (their *values* are
//! clock readings), so the width-invariance assertions split:
//!
//! * the `multiway_fanout` histogram records a deterministic value (the
//!   probe count of each multiway join) and must be **bucket-exact
//!   equal** across widths 1, 4 and 8 — min, max, sum, count and every
//!   bucket;
//! * the latency histograms must keep their documented count/sum
//!   invariants (`qe_call_ns` count == `QeCalls`, `fixpoint_round_ns`
//!   count == `FixpointRounds`, `multiway_fanout` sum ==
//!   `MultiwayProbes`) at every width.
//!
//! All four shipped theories are covered: dense order and equality run
//! the recursive fixpoint (which exercises the multiway join), boolean
//! algebra and real polynomials run the calculus compose query (their
//! QE is the expensive path worth histogramming).

use cql_arith::Rat;
use cql_bool::{BoolAlg, BoolFunc};
use cql_core::theory::Theory;
use cql_core::{CalculusQuery, Database, Formula, GenRelation};
use cql_dense::Dense;
use cql_engine::datalog::{self, Atom, FixpointOptions, Literal, Program, Rule};
use cql_engine::trace::{hist, Counter, Histogram, MetricsScope, MetricsSnapshot};
use cql_engine::{calculus, Engine};
use cql_equality::Equality;
use cql_poly::RealPoly;

const WIDTHS: [usize; 3] = [1, 4, 8];

/// Transitive closure: the second rule's two relational atoms take the
/// multiway join path.
fn tc_program<T: Theory>() -> Program<T> {
    Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 1]),
            vec![
                Literal::Pos(Atom::new("T", vec![0, 2])),
                Literal::Pos(Atom::new("E", vec![2, 1])),
            ],
        ),
    ])
}

/// `∃z E(x,z) ∧ E(z,y)` with free variables x, y.
fn compose_query<T: Theory>() -> CalculusQuery<T> {
    CalculusQuery::new(
        Formula::atom("E", vec![0, 2]).and(Formula::atom("E", vec![2, 1])).exists(2),
        vec![0, 1],
    )
    .expect("well-formed")
}

fn chain_db<T: Theory>(values: &[T::Value]) -> Database<T> {
    let mut db = Database::new();
    db.insert(
        "E",
        GenRelation::from_conjunctions(
            2,
            values.windows(2).map(|w| vec![T::var_const_eq(0, &w[0]), T::var_const_eq(1, &w[1])]),
        ),
    );
    db
}

/// The documented latency-histogram invariants, which must hold at any
/// executor width because scopes merge exactly.
fn assert_latency_invariants(snap: &MetricsSnapshot, width: usize) {
    if let Some(h) = snap.hists.get(hist::QE_CALL_NS) {
        assert_eq!(
            h.count(),
            snap.get(Counter::QeCalls),
            "qe_call_ns count != QeCalls at width {width}"
        );
    }
    if let Some(h) = snap.hists.get(hist::FIXPOINT_ROUND_NS) {
        assert_eq!(
            h.count(),
            snap.get(Counter::FixpointRounds),
            "fixpoint_round_ns count != FixpointRounds at width {width}"
        );
    }
    if let Some(h) = snap.hists.get(hist::MULTIWAY_FANOUT) {
        assert_eq!(
            h.sum(),
            snap.get(Counter::MultiwayProbes),
            "multiway_fanout sum != MultiwayProbes at width {width}"
        );
    }
}

/// Scoped snapshot of a semi-naive fixpoint at the given thread width.
fn fixpoint_snapshot<T: Theory>(
    program: &Program<T>,
    db: &Database<T>,
    threads: usize,
) -> MetricsSnapshot {
    let scope = MetricsScope::enter("fixpoint");
    let opts = FixpointOptions { threads, ..Default::default() };
    datalog::seminaive(program, db, &opts).expect("fixpoint converges");
    scope.snapshot()
}

/// Scoped snapshot of a calculus evaluation at the given thread width.
fn calculus_snapshot<T: Theory>(
    query: &CalculusQuery<T>,
    db: &Database<T>,
    threads: usize,
) -> MetricsSnapshot {
    let scope = MetricsScope::enter("calculus");
    let engine: Engine<T> = Engine::with_threads(threads);
    calculus::evaluate_with(&engine, query, db).expect("query evaluates");
    scope.snapshot()
}

/// Width invariance for a fixpoint workload: the latency invariants hold
/// at every width, and the deterministic fanout histogram merged from
/// any number of worker shards is bucket-exact equal to width 1's.
fn assert_fixpoint_width_invariant<T: Theory>(program: &Program<T>, db: &Database<T>) {
    let mut reference: Option<Histogram> = None;
    for width in WIDTHS {
        let snap = fixpoint_snapshot(program, db, width);
        assert_latency_invariants(&snap, width);
        let fanout = snap
            .hists
            .get(hist::MULTIWAY_FANOUT)
            .cloned()
            .expect("recursive rule takes the multiway path");
        assert!(fanout.count() > 0, "no multiway joins recorded — the test is vacuous");
        match &reference {
            None => reference = Some(fanout),
            Some(r) => assert_eq!(r, &fanout, "fanout histogram diverged at width {width}"),
        }
    }
}

/// Width invariance for a calculus workload: QE latency samples all land
/// in the issuing scope (count == `QeCalls`) and the sample count is
/// itself width-invariant.
fn assert_calculus_width_invariant<T: Theory>(query: &CalculusQuery<T>, db: &Database<T>) {
    let mut reference: Option<u64> = None;
    for width in WIDTHS {
        let snap = calculus_snapshot(query, db, width);
        assert_latency_invariants(&snap, width);
        let count = snap.hists.get(hist::QE_CALL_NS).map_or(0, Histogram::count);
        assert!(count > 0, "no QE samples recorded — the test is vacuous");
        match reference {
            None => reference = Some(count),
            Some(r) => assert_eq!(r, count, "QE sample count diverged at width {width}"),
        }
    }
}

#[test]
fn dense_fanout_histogram_is_thread_invariant() {
    let values: Vec<Rat> = (0..10).map(Rat::from).collect();
    let db = chain_db::<Dense>(&values);
    assert_fixpoint_width_invariant(&tc_program::<Dense>(), &db);
    assert_calculus_width_invariant(&compose_query::<Dense>(), &db);
}

#[test]
fn equality_fanout_histogram_is_thread_invariant() {
    let values: Vec<i64> = (0..10).collect();
    let db = chain_db::<Equality>(&values);
    assert_fixpoint_width_invariant(&tc_program::<Equality>(), &db);
    assert_calculus_width_invariant(&compose_query::<Equality>(), &db);
}

#[test]
fn boolean_qe_histogram_is_thread_invariant() {
    // Only 0 and 1 are generator-free elements, so the "chain" is the
    // two-element cycle 0 → 1 → 0 → 1 (as in metrics_scope.rs).
    let values: Vec<BoolFunc> =
        vec![BoolFunc::zero(), BoolFunc::one(), BoolFunc::zero(), BoolFunc::one()];
    let db = chain_db::<BoolAlg>(&values);
    assert_calculus_width_invariant(&compose_query::<BoolAlg>(), &db);
}

#[test]
fn poly_qe_histogram_is_thread_invariant() {
    let values: Vec<Rat> = (0..8).map(Rat::from).collect();
    let db = chain_db::<RealPoly>(&values);
    assert_calculus_width_invariant(&compose_query::<RealPoly>(), &db);
}
