//! Concurrent snapshot isolation: 8 readers race a committing writer
//! across 100 epochs, and every reader's pinned state must be
//! byte-identical to a *serial* evaluation at that epoch — a reader may
//! never observe a partial commit (EDB updated but the maintained IDB
//! not, or vice versa).
//!
//! The check is self-contained per read: render the pinned snapshot's
//! `E`, run the batch semi-naive fixpoint over exactly that `E` on a
//! private engine, and compare the renderings of the maintained `T`
//! against the batch result. Torn state — any interleaving where the
//! published database mixes two commits — fails the comparison, because
//! no serial prefix of the commit sequence produces that (E, T) pair
//! with T = closure(E).

use cql_core::relation::{Database, GenRelation, GenTuple};
use cql_dense::{Dense, DenseConstraint};
use cql_engine::datalog::{seminaive, Atom, FixpointOptions, Literal, Program, Rule};
use cql_engine::Runtime;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn tc_program() -> Program<Dense> {
    Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 1]),
            vec![
                Literal::Pos(Atom::new("T", vec![0, 2])),
                Literal::Pos(Atom::new("E", vec![2, 1])),
            ],
        ),
    ])
}

fn edge(a: i64, b: i64) -> GenTuple<Dense> {
    GenTuple::new(vec![DenseConstraint::eq_const(0, a), DenseConstraint::eq_const(1, b)]).unwrap()
}

fn render(rel: &GenRelation<Dense>) -> Vec<String> {
    let mut out: Vec<String> = rel.tuples().iter().map(ToString::to_string).collect();
    out.sort();
    out
}

/// The writer's commit sequence: 100 effective commits over short
/// disjoint chains (component `c` holds the edges `(10c, 10c+1) …`),
/// keeping each serial fixpoint cheap while every commit still changes
/// both `E` and the closure `T`.
fn commit_sequence() -> Vec<(i64, i64)> {
    (0..100)
        .map(|i| {
            let (component, pos) = (i / 5, i % 5);
            (10 * component + pos, 10 * component + pos + 1)
        })
        .collect()
}

#[test]
fn readers_never_observe_a_partial_commit() {
    let mut db = Database::new();
    db.insert("E", GenRelation::<Dense>::empty(2));
    let runtime =
        Arc::new(Runtime::new(tc_program(), &db, FixpointOptions::default()).expect("materialize"));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let writer = {
            let runtime = Arc::clone(&runtime);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for (a, b) in commit_sequence() {
                    runtime.insert("E", edge(a, b)).expect("commit");
                }
                done.store(true, Ordering::Release);
            })
        };
        let readers: Vec<_> = (0..8)
            .map(|_| {
                let runtime = Arc::clone(&runtime);
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    let program = tc_program();
                    let opts = FixpointOptions::default();
                    let mut last_epoch = 0;
                    let mut reads = 0usize;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let snap = runtime.pin();
                        // Epochs are monotone: a later pin never time-travels.
                        assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                        last_epoch = snap.epoch();
                        // Serial evaluation at the pinned epoch: batch
                        // fixpoint over exactly the pinned E.
                        let mut edb = Database::new();
                        edb.insert("E", snap.relation("E").expect("E present").clone());
                        let batch = seminaive(&program, &edb, &opts).expect("batch fixpoint");
                        assert_eq!(
                            render(snap.relation("T").expect("T present")),
                            render(batch.idb.require("T").expect("closure")),
                            "pinned T must equal the serial closure of pinned E \
                             (epoch {})",
                            snap.epoch()
                        );
                        reads += 1;
                        if finished {
                            break;
                        }
                    }
                    reads
                })
            })
            .collect();
        writer.join().expect("writer");
        let total: usize = readers.into_iter().map(|r| r.join().expect("reader")).sum();
        assert!(total >= 8, "every reader performed at least one consistent read");
    });

    // After the race: the final epoch holds the full 100-commit state.
    let final_snap = runtime.pin();
    assert_eq!(final_snap.relation("E").expect("E").len(), 100);
    // 20 components × (5·6/2 = 15 closure pairs) = 300.
    assert_eq!(final_snap.relation("T").expect("T").len(), 300);
    assert_eq!(runtime.store().commits(), 100);
}

#[test]
fn pinned_epochs_survive_retractions_mid_race() {
    // A writer that also retracts: over-deletion/re-derivation runs
    // under the writer lock, and readers still only ever see published
    // epochs.
    let mut db = Database::new();
    let mut e = GenRelation::<Dense>::empty(2);
    for i in 0..5 {
        e.insert(edge(i, i + 1));
    }
    db.insert("E", e);
    let runtime =
        Arc::new(Runtime::new(tc_program(), &db, FixpointOptions::default()).expect("materialize"));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        {
            let runtime = Arc::clone(&runtime);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for round in 0..25 {
                    let extra = edge(100 + round, 101 + round);
                    runtime.insert("E", extra.clone()).expect("insert");
                    runtime.retract("E", &extra).expect("retract");
                }
                done.store(true, Ordering::Release);
            });
        }
        for _ in 0..4 {
            let runtime = Arc::clone(&runtime);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let program = tc_program();
                let opts = FixpointOptions::default();
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = runtime.pin();
                    let mut edb = Database::new();
                    edb.insert("E", snap.relation("E").expect("E").clone());
                    let batch = seminaive(&program, &edb, &opts).expect("batch");
                    assert_eq!(
                        render(snap.relation("T").expect("T")),
                        render(batch.idb.require("T").expect("closure")),
                    );
                    if finished {
                        break;
                    }
                }
            });
        }
    });
    // Inserts and retracts cancelled out: back to the seed chain.
    let snap = runtime.pin();
    assert_eq!(snap.relation("E").expect("E").len(), 5);
    assert_eq!(snap.relation("T").expect("T").len(), 15);
}
