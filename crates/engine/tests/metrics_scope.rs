//! Scoped-metrics exactness under the parallel executor.
//!
//! The tentpole claim of the observability layer is that a
//! [`MetricsScope`] entered on the issuing thread captures *exactly* the
//! counts produced on its behalf, no matter how many worker threads the
//! [`Executor`] fans out to — workers install the issuing thread's scope
//! handle, so nothing lands in the process root or a sibling scope. CI
//! runs this file under `CQL_ENGINE_THREADS=1` and `=4`.

use cql_arith::Rat;
use cql_bool::BoolFunc;
use cql_core::theory::Theory;
use cql_core::{CalculusQuery, Database, Formula, GenRelation};
use cql_dense::Dense;
use cql_engine::datalog::{self, Atom, FixpointOptions, Literal, Program, Rule};
use cql_engine::trace::{count, Counter, MetricsScope, MetricsSnapshot};
use cql_engine::{calculus, Engine, Executor};
use cql_equality::{EqConstraint, Equality};
use cql_poly::RealPoly;
use proptest::prelude::*;

/// Counters whose totals are determined by the workload alone (interner
/// hit/miss splits may legitimately vary with worker interleaving; these
/// may not).
const DETERMINISTIC: &[Counter] = &[
    Counter::EntailmentChecks,
    Counter::SignatureSkips,
    Counter::SampleSkips,
    Counter::TuplesInserted,
    Counter::TuplesSubsumed,
    Counter::TuplesEvicted,
    Counter::QeCalls,
    Counter::FixpointRounds,
];

fn deterministic_totals(snap: &MetricsSnapshot) -> Vec<(&'static str, u64)> {
    DETERMINISTIC.iter().map(|&c| (c.name(), snap.get(c))).collect()
}

proptest! {
    /// The executor delivers every worker-side count to the issuing
    /// scope: the scope total equals the arithmetic sum over all items,
    /// for any thread width, and none of it leaks past the scope into a
    /// sibling opened afterwards.
    #[test]
    fn executor_counts_sum_exactly(
        weights in prop::collection::vec(1u32..100, 1..40),
        threads in 1usize..5,
    ) {
        let weights: Vec<u64> = weights.into_iter().map(u64::from).collect();
        let expected: u64 = weights.iter().sum();
        let outer = MetricsScope::enter("outer");
        let observed = {
            let scope = MetricsScope::enter("issuing");
            let ex = Executor::new(threads);
            let _ = ex.map(weights.clone(), |w| {
                count(Counter::QeCalls, w);
                w
            });
            scope.snapshot().get(Counter::QeCalls)
        };
        prop_assert_eq!(observed, expected);
        // Merge-on-drop is lossless: the parent sees exactly the child's
        // total, and a sibling scope sees none of it.
        prop_assert_eq!(outer.snapshot().get(Counter::QeCalls), expected);
        let sibling = MetricsScope::enter("sibling");
        prop_assert_eq!(sibling.snapshot().get(Counter::QeCalls), 0);
    }
}

/// Concurrent queries on separate OS threads keep separate books: each
/// thread's scope sees its own counts only, even while both are counting
/// through their own executors at the same time.
#[test]
fn sibling_scopes_do_not_bleed() {
    let totals: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                s.spawn(move || {
                    let scope = MetricsScope::enter("query");
                    let ex = Executor::new(2);
                    let items: Vec<u64> = (0..50).map(|k| i + k).collect();
                    let _ = ex.map(items, |w| count(Counter::EntailmentChecks, w));
                    scope.snapshot().get(Counter::EntailmentChecks)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, total) in totals.iter().enumerate() {
        let i = i as u64;
        let expected: u64 = (0..50).map(|k| i + k).sum();
        assert_eq!(*total, expected, "thread {i} scope polluted by a sibling");
    }
}

/// Transitive closure used for the fixpoint workloads below.
fn tc_program<T: Theory>() -> Program<T> {
    Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 1]),
            vec![
                Literal::Pos(Atom::new("T", vec![0, 2])),
                Literal::Pos(Atom::new("E", vec![2, 1])),
            ],
        ),
    ])
}

/// Scoped totals of a semi-naive fixpoint at the given thread width.
fn fixpoint_totals<T: Theory>(
    program: &Program<T>,
    db: &Database<T>,
    threads: usize,
) -> Vec<(&'static str, u64)> {
    let scope = MetricsScope::enter("fixpoint");
    let opts = FixpointOptions { threads, ..Default::default() };
    datalog::seminaive(program, db, &opts).expect("fixpoint converges");
    deterministic_totals(&scope.snapshot())
}

/// Scoped totals of a calculus evaluation at the given thread width.
fn calculus_totals<T: Theory>(
    query: &CalculusQuery<T>,
    db: &Database<T>,
    threads: usize,
) -> Vec<(&'static str, u64)> {
    let scope = MetricsScope::enter("calculus");
    let engine: Engine<T> = Engine::with_threads(threads);
    calculus::evaluate_with(&engine, query, db).expect("query evaluates");
    deterministic_totals(&scope.snapshot())
}

/// The deterministic counters must agree across thread widths 1, 4, and
/// whatever `CQL_ENGINE_THREADS` selects (the CI matrix) — i.e. the
/// per-thread books always sum to the same workload total.
fn assert_width_invariant(totals: impl Fn(usize) -> Vec<(&'static str, u64)>) {
    let serial = totals(1);
    assert!(
        serial.iter().any(|&(_, v)| v > 0),
        "workload produced no counts at all — the test is vacuous"
    );
    for width in [4, Executor::from_env().threads()] {
        assert_eq!(serial, totals(width), "scoped totals diverged at width {width}");
    }
}

/// `∃z E(x,z) ∧ E(z,y)` with free variables x, y.
fn compose_query<T: Theory>() -> CalculusQuery<T> {
    CalculusQuery::new(
        Formula::atom("E", vec![0, 2]).and(Formula::atom("E", vec![2, 1])).exists(2),
        vec![0, 1],
    )
    .expect("well-formed")
}

fn chain_db<T: Theory>(values: &[T::Value]) -> Database<T> {
    let mut db = Database::new();
    db.insert(
        "E",
        GenRelation::from_conjunctions(
            2,
            values.windows(2).map(|w| vec![T::var_const_eq(0, &w[0]), T::var_const_eq(1, &w[1])]),
        ),
    );
    db
}

#[test]
fn dense_totals_are_thread_invariant() {
    let values: Vec<Rat> = (0..10).map(Rat::from).collect();
    let db = chain_db::<Dense>(&values);
    let program = tc_program::<Dense>();
    assert_width_invariant(|t| fixpoint_totals(&program, &db, t));
    let query = compose_query::<Dense>();
    assert_width_invariant(|t| calculus_totals(&query, &db, t));
}

#[test]
fn equality_totals_are_thread_invariant() {
    let mut db = Database::<Equality>::new();
    db.insert(
        "E",
        GenRelation::from_conjunctions(
            2,
            (0..10).map(|i| vec![EqConstraint::eq_const(0, i), EqConstraint::eq_const(1, i + 1)]),
        ),
    );
    let program = tc_program::<Equality>();
    assert_width_invariant(|t| fixpoint_totals(&program, &db, t));
    let query = compose_query::<Equality>();
    assert_width_invariant(|t| calculus_totals(&query, &db, t));
}

#[test]
fn boolean_totals_are_thread_invariant() {
    use cql_bool::BoolAlg;
    // Only 0 and 1 are generator-free elements (generator variables
    // would collide with the tuple-variable namespace), so the "chain"
    // is the two-element cycle 0 → 1 → 0 → 1.
    let values: Vec<BoolFunc> =
        vec![BoolFunc::zero(), BoolFunc::one(), BoolFunc::zero(), BoolFunc::one()];
    let db = chain_db::<BoolAlg>(&values);
    let query = compose_query::<BoolAlg>();
    assert_width_invariant(|t| calculus_totals(&query, &db, t));
}

#[test]
fn poly_totals_are_thread_invariant() {
    let values: Vec<Rat> = (0..8).map(Rat::from).collect();
    let db = chain_db::<RealPoly>(&values);
    let query = compose_query::<RealPoly>();
    assert_width_invariant(|t| calculus_totals(&query, &db, t));
}
