//! # cql — Constraint Query Languages
//!
//! A comprehensive Rust reproduction of Paris C. Kanellakis, Gabriel M.
//! Kuper and Peter Z. Revesz, *Constraint Query Languages* (PODS 1990):
//! generalized tuples are conjunctions of constraints, generalized
//! relations finitely represent infinite point sets, and relational
//! calculus / Datalog / inflationary Datalog¬ evaluate **bottom-up**, in
//! **closed form** (quantifier elimination), with **low data complexity**.
//!
//! This facade re-exports the workspace:
//!
//! | module | paper | contents |
//! |--------|-------|----------|
//! | [`core`] | §1 | the framework: `Theory`, generalized relations, `EnginePolicy` (plus the evaluators re-exported from [`engine`]) |
//! | [`engine`] | §2–3 | shared evaluation engine: interner, executor, calculus & Datalog evaluators, cell-based `EVAL_φ` |
//! | [`dense`] | §3 | dense linear order: order networks, r-configurations |
//! | [`equality`] | §4 | equality over an infinite domain: e-configurations |
//! | [`poly`] | §2 | real polynomial inequalities: virtual substitution QE |
//! | [`boolean`] | §5 | boolean equality constraints over free algebras |
//! | [`tableau`] | §2.2 | tableau queries and containment |
//! | [`index`] | §1.1(3) | generalized 1-d indexing substrates |
//! | [`geo`] | §2.1 | rectangle / hull / Voronoi workloads |
//! | [`arith`] | — | exact numbers: `BigInt`, `Rat`, polynomials |
//!
//! ## Quickstart
//!
//! ```
//! use cql::prelude::*;
//!
//! // R(z, x, y): point (x, y) lies in rectangle z — one generalized
//! // tuple per rectangle (Example 1.1).
//! let mut db: Database<Dense> = Database::new();
//! db.insert("R", GenRelation::from_conjunctions(3, vec![
//!     vec![DenseConstraint::eq_const(0, 1),
//!          DenseConstraint::ge_const(1, 0), DenseConstraint::le_const(1, 2),
//!          DenseConstraint::ge_const(2, 0), DenseConstraint::le_const(2, 2)],
//!     vec![DenseConstraint::eq_const(0, 2),
//!          DenseConstraint::ge_const(1, 1), DenseConstraint::le_const(1, 3),
//!          DenseConstraint::ge_const(2, 1), DenseConstraint::le_const(2, 3)],
//! ]));
//!
//! // {(n1, n2) | n1 ≠ n2 ∧ ∃x,y (R(n1,x,y) ∧ R(n2,x,y))}
//! let query = CalculusQuery::new(
//!     Formula::constraint(DenseConstraint::ne(0, 1)).and(
//!         Formula::atom("R", vec![0, 2, 3])
//!             .and(Formula::atom("R", vec![1, 2, 3]))
//!             .exists_all(&[2, 3])),
//!     vec![0, 1],
//! ).unwrap();
//!
//! let out = cql::core::calculus::evaluate(&query, &db).unwrap();
//! assert!(out.satisfied_by(&[Rat::from(1), Rat::from(2)]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod combined;

pub use cql_arith as arith;
pub use cql_bool as boolean;
pub use cql_dense as dense;

/// The framework: `cql-core`'s data model (theories, generalized
/// relations, formulas, policy) plus `cql-engine`'s evaluators
/// (algebra, calculus, cells, Datalog) under the historical paths.
pub mod core {
    pub use cql_core::*;
    pub use cql_engine::{algebra, calculus, cells, datalog};
}

pub use cql_engine as engine;
pub use cql_equality as equality;
pub use cql_geo as geo;
pub use cql_index as index;
pub use cql_poly as poly;
pub use cql_tableau as tableau;

/// The most common imports in one place.
pub mod prelude {
    pub use cql_arith::{BigInt, Poly, Rat};
    pub use cql_bool::{BoolAlg, BoolConstraint, BoolTerm};
    pub use cql_core::{
        CalculusQuery, CellTheory, CqlError, Database, EnginePolicy, Formula, GenRelation,
        GenTuple, SubsumptionMode, Theory,
    };
    pub use cql_dense::{Dense, DenseConstraint, RConfig};
    pub use cql_engine::datalog::{
        Atom, FixpointOptions, Literal, MaterializedView, Program, Rule,
    };
    pub use cql_engine::trace::TelemetryRegistry;
    pub use cql_engine::{
        algebra, calculus, cells, datalog, Admission, Engine, Executor, QueryServer, Runtime,
        ServerConfig, Snapshot, SnapshotStore,
    };
    pub use cql_equality::{EConfig, EqConstraint, Equality};
    pub use cql_poly::{PolyConstraint, RealPoly};
}
