//! The two-sorted combined framework of §5.2's closing remark:
//! "boolean equality constraints can be added on top of the Datalog
//! framework with dense linear order ... we can strictly sort the
//! arguments of each database predicate, e.g., each argument can range
//! either over the rationals or over a finite boolean domain. All of our
//! results still hold in this combined framework."
//!
//! [`TwoSorted`] is a product theory: every variable is used at one sort
//! (order or boolean), constraints mention variables of a single sort,
//! and all theory operations dispatch to the underlying side. With it,
//! Example 5.8's recursive parity program runs exactly as the paper
//! writes it — rational chain relations `Next`/`Last` indexing boolean
//! `Input` bits.

use cql_arith::Rat;
use cql_bool::{BoolAlg, BoolConstraint, BoolFunc, BoolSummary};
use cql_core::error::Result;
use cql_core::summary::{BoxSummary, ConstraintSummary};
use cql_core::theory::{Theory, Var};
use cql_dense::{Dense, DenseConstraint};
use std::fmt;

/// A value of the combined domain: a rational or a boolean-algebra
/// element.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SortedValue {
    /// The dense-order sort (ℚ).
    Num(Rat),
    /// The boolean sort (an element of the free algebra).
    Bool(BoolFunc),
}

impl fmt::Display for SortedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortedValue::Num(r) => write!(f, "{r}"),
            SortedValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A constraint of the combined theory — exactly one sort per atom.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SortedConstraint {
    /// A dense-order constraint over numeric variables.
    Num(DenseConstraint),
    /// A boolean equality constraint over boolean variables.
    Bool(BoolConstraint),
}

impl fmt::Display for SortedConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortedConstraint::Num(c) => write!(f, "{c}"),
            SortedConstraint::Bool(c) => write!(f, "{c}"),
        }
    }
}

/// The combined (dense order × boolean) theory tag.
///
/// Sort discipline: a variable may appear in constraints of one sort
/// only; points supply a [`SortedValue`] of the matching sort per
/// variable. Violations surface as evaluation panics with a sort
/// diagnostic — programs are expected to be sort-checked by construction
/// (the paper's "strictly sorted arguments").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoSorted {}

/// Product summary for the two-sorted theory: the numeric sort's
/// interval box and the boolean sort's forced-literal masks. Sorts are
/// disjoint variable populations, so intersection may be refuted by
/// either side independently; `range` delegates to the numeric box (the
/// sort with a meaningful rational hull).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TwoSortedSummary {
    /// Summary of the dense-order atoms.
    pub num: BoxSummary,
    /// Summary of the boolean atoms.
    pub bools: BoolSummary,
}

impl ConstraintSummary for TwoSortedSummary {
    fn top() -> TwoSortedSummary {
        TwoSortedSummary::default()
    }

    fn may_intersect(&self, other: &TwoSortedSummary) -> bool {
        self.num.may_intersect(&other.num) && self.bools.may_intersect(&other.bools)
    }

    fn range(&self, dim: Var) -> Option<(Rat, Rat)> {
        self.num.range(dim)
    }

    fn ranged_dims(&self) -> Vec<Var> {
        self.num.ranged_dims()
    }
}

fn split(conj: &[SortedConstraint]) -> (Vec<DenseConstraint>, Vec<BoolConstraint>) {
    let mut nums = Vec::new();
    let mut bools = Vec::new();
    for c in conj {
        match c {
            SortedConstraint::Num(c) => nums.push(c.clone()),
            SortedConstraint::Bool(c) => bools.push(c.clone()),
        }
    }
    (nums, bools)
}

impl Theory for TwoSorted {
    type Constraint = SortedConstraint;
    type Value = SortedValue;
    type Summary = TwoSortedSummary;

    fn name() -> &'static str {
        "dense linear order × boolean algebra (two-sorted, §5.2)"
    }

    fn summary(conj: &[SortedConstraint]) -> TwoSortedSummary {
        let (nums, bools) = split(conj);
        TwoSortedSummary { num: Dense::summary(&nums), bools: BoolAlg::summary(&bools) }
    }

    fn canonicalize(conj: &[SortedConstraint]) -> Option<Vec<SortedConstraint>> {
        let (nums, bools) = split(conj);
        let mut out: Vec<SortedConstraint> =
            Dense::canonicalize(&nums)?.into_iter().map(SortedConstraint::Num).collect();
        out.extend(BoolAlg::canonicalize(&bools)?.into_iter().map(SortedConstraint::Bool));
        Some(out)
    }

    fn eliminate(conj: &[SortedConstraint], var: Var) -> Result<Vec<Vec<SortedConstraint>>> {
        cql_trace::qe_timed("qe.two-sorted", || {
            let (nums, bools) = split(conj);
            let num_uses = nums.iter().any(|c| c.vars().contains(&var));
            if num_uses {
                let dnf = Dense::eliminate(&nums, var)?;
                return Ok(dnf
                    .into_iter()
                    .map(|nconj| {
                        let mut all: Vec<SortedConstraint> =
                            nconj.into_iter().map(SortedConstraint::Num).collect();
                        all.extend(bools.iter().cloned().map(SortedConstraint::Bool));
                        all
                    })
                    .collect());
            }
            let dnf = BoolAlg::eliminate(&bools, var)?;
            Ok(dnf
                .into_iter()
                .map(|bconj| {
                    let mut all: Vec<SortedConstraint> =
                        nums.iter().cloned().map(SortedConstraint::Num).collect();
                    all.extend(bconj.into_iter().map(SortedConstraint::Bool));
                    all
                })
                .collect())
        })
    }

    /// Negation is available on the order sort only (the boolean sort is
    /// not closed under negation, see [`BoolAlg`]).
    fn negate(c: &SortedConstraint) -> Vec<SortedConstraint> {
        match c {
            SortedConstraint::Num(c) => {
                Dense::negate(c).into_iter().map(SortedConstraint::Num).collect()
            }
            SortedConstraint::Bool(c) => {
                BoolAlg::negate(c).into_iter().map(SortedConstraint::Bool).collect()
            }
        }
    }

    /// Variable equality defaults to the numeric sort; boolean equality
    /// between variables is written explicitly via
    /// [`SortedConstraint::Bool`].
    fn var_eq(a: Var, b: Var) -> SortedConstraint {
        SortedConstraint::Num(DenseConstraint::eq(a, b))
    }

    fn var_const_eq(v: Var, value: &SortedValue) -> SortedConstraint {
        match value {
            SortedValue::Num(r) => SortedConstraint::Num(DenseConstraint::eq_const(v, r.clone())),
            SortedValue::Bool(b) => {
                SortedConstraint::Bool(BoolConstraint::from_func(BoolFunc::var(v).xor(b)))
            }
        }
    }

    fn eval(c: &SortedConstraint, point: &[SortedValue]) -> bool {
        match c {
            SortedConstraint::Num(c) => {
                let nums: Vec<Rat> = point
                    .iter()
                    .map(|v| match v {
                        SortedValue::Num(r) => r.clone(),
                        SortedValue::Bool(_) => Rat::zero(), // unused slot
                    })
                    .collect();
                // Sort check: the constraint's variables must be numeric.
                for v in c.vars() {
                    assert!(
                        matches!(point.get(v), Some(SortedValue::Num(_))),
                        "sort error: x{v} used as a number but bound to a boolean"
                    );
                }
                c.eval(&nums)
            }
            SortedConstraint::Bool(c) => {
                let bools: Vec<BoolFunc> = point
                    .iter()
                    .map(|v| match v {
                        SortedValue::Bool(b) => b.clone(),
                        SortedValue::Num(_) => BoolFunc::zero(), // unused slot
                    })
                    .collect();
                for v in BoolAlg::vars(c) {
                    assert!(
                        matches!(point.get(v), Some(SortedValue::Bool(_))),
                        "sort error: x{v} used as a boolean but bound to a number"
                    );
                }
                BoolAlg::eval(c, &bools)
            }
        }
    }

    fn rename(c: &SortedConstraint, map: &dyn Fn(Var) -> Var) -> SortedConstraint {
        match c {
            SortedConstraint::Num(c) => SortedConstraint::Num(c.rename(map)),
            SortedConstraint::Bool(c) => SortedConstraint::Bool(BoolAlg::rename(c, map)),
        }
    }

    fn vars(c: &SortedConstraint) -> Vec<Var> {
        match c {
            SortedConstraint::Num(c) => c.vars(),
            SortedConstraint::Bool(c) => BoolAlg::vars(c),
        }
    }

    fn constants(c: &SortedConstraint) -> Vec<SortedValue> {
        match c {
            SortedConstraint::Num(c) => c.constants().into_iter().map(SortedValue::Num).collect(),
            SortedConstraint::Bool(c) => {
                BoolAlg::constants(c).into_iter().map(SortedValue::Bool).collect()
            }
        }
    }

    fn entails(a: &[SortedConstraint], b: &[SortedConstraint]) -> bool {
        let (an, ab) = split(a);
        let (bn, bb) = split(b);
        Dense::entails(&an, &bn) && BoolAlg::entails(&ab, &bb)
    }

    fn sample(conj: &[SortedConstraint], arity: usize) -> Option<Vec<SortedValue>> {
        // Sample each side, then merge by which sort constrains each slot
        // (unconstrained slots default to the numeric sort).
        let (nums, bools) = split(conj);
        let num_point = Dense::sample(&nums, arity)?;
        let bool_point = BoolAlg::sample(&bools, arity)?;
        let bool_vars: std::collections::BTreeSet<Var> =
            bools.iter().flat_map(BoolAlg::vars).collect();
        Some(
            (0..arity)
                .map(|v| {
                    if bool_vars.contains(&v) {
                        SortedValue::Bool(bool_point[v].clone())
                    } else {
                        SortedValue::Num(num_point[v].clone())
                    }
                })
                .collect(),
        )
    }
}

/// Example 5.8 exactly as written: the recursive parity program over the
/// two-sorted framework — rational positions `1..=n` in `Next`/`Last`,
/// boolean parametric inputs `Input(i, Y_i)`.
///
/// Returns the derived `Paritybit` relation (arity 1, boolean sort).
///
/// # Errors
/// Propagates fixpoint errors.
pub fn example_5_8_parity(n: usize) -> Result<cql_core::GenRelation<TwoSorted>> {
    use cql_bool::BoolTerm;
    use cql_core::{Database, GenRelation};
    use cql_engine::datalog::{self, Atom, FixpointOptions, Literal, Program, Rule};

    assert!(n >= 1);
    let num_eq = |v: Var, k: i64| SortedConstraint::Num(DenseConstraint::eq_const(v, k));

    let bool_eq =
        |v: Var, t: &BoolTerm| SortedConstraint::Bool(BoolConstraint::eq(&BoolTerm::Var(v), t));

    let mut edb: Database<TwoSorted> = Database::new();
    edb.insert(
        "Next",
        GenRelation::from_conjunctions(
            2,
            (1..n as i64).map(|i| vec![num_eq(0, i), num_eq(1, i + 1)]),
        ),
    );
    edb.insert("Last", GenRelation::from_conjunctions(1, vec![vec![num_eq(0, n as i64)]]));
    edb.insert(
        "Input",
        GenRelation::from_conjunctions(
            2,
            (1..=n).map(|i| vec![num_eq(0, i as i64), bool_eq(1, &BoolTerm::Gen(i - 1))]),
        ),
    );

    // Paritybit(x) :- Parity(k, x), Last(k)
    // Parity(i, x) :- Parity(j, y), Next(j, i), Input(i, z), x = y ⊕ z
    // Parity(1, z) :- Input(i, z), i = 1
    let program: Program<TwoSorted> = Program::new(vec![
        Rule::new(
            Atom::new("Paritybit", vec![0]),
            vec![
                Literal::Pos(Atom::new("Parity", vec![1, 0])),
                Literal::Pos(Atom::new("Last", vec![1])),
            ],
        ),
        Rule::new(
            Atom::new("Parity", vec![0, 1]),
            vec![
                Literal::Pos(Atom::new("Parity", vec![2, 3])),
                Literal::Pos(Atom::new("Next", vec![2, 0])),
                Literal::Pos(Atom::new("Input", vec![0, 4])),
                Literal::Constraint(SortedConstraint::Bool(BoolConstraint::eq(
                    &BoolTerm::Var(1),
                    &BoolTerm::Var(3).xor(BoolTerm::Var(4)),
                ))),
            ],
        ),
        Rule::new(
            Atom::new("Parity", vec![0, 1]),
            vec![Literal::Pos(Atom::new("Input", vec![0, 1])), Literal::Constraint(num_eq(0, 1))],
        ),
    ]);
    let opts = FixpointOptions { max_iterations: n + 4, ..FixpointOptions::default() };
    let result = datalog::naive(&program, &edb, &opts)?;
    Ok(result.idb.get("Paritybit").expect("derived").clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_splits_sorts() {
        let conj = vec![
            SortedConstraint::Num(DenseConstraint::lt(0, 1)),
            SortedConstraint::Bool(BoolConstraint::eq(
                &cql_bool::BoolTerm::Var(2),
                &cql_bool::BoolTerm::Gen(0),
            )),
        ];
        let canon = TwoSorted::canonicalize(&conj).unwrap();
        assert_eq!(canon.len(), 2);
        // Contradiction on the numeric side kills the whole conjunction.
        let mut bad = conj.clone();
        bad.push(SortedConstraint::Num(DenseConstraint::lt(1, 0)));
        assert!(TwoSorted::canonicalize(&bad).is_none());
    }

    #[test]
    fn eval_respects_sorts() {
        let c = SortedConstraint::Num(DenseConstraint::lt_const(0, 5));
        assert!(TwoSorted::eval(&c, &[SortedValue::Num(Rat::from(3))]));
        assert!(!TwoSorted::eval(&c, &[SortedValue::Num(Rat::from(7))]));
    }

    #[test]
    fn example_5_8_runs_as_written() {
        for n in 1..=4 {
            let parity = example_5_8_parity(n).unwrap();
            let expected = cql_bool::programs::parity_func(n);
            assert!(
                parity.satisfied_by(&[SortedValue::Bool(expected.clone())]),
                "parity of {n} parametric bits"
            );
            assert!(!parity.satisfied_by(&[SortedValue::Bool(expected.not())]));
        }
    }

    #[test]
    fn mixed_elimination_dispatches() {
        // ∃x1 (x0 < x1 ∧ x1 < x2) with an unrelated boolean conjunct.
        let conj = vec![
            SortedConstraint::Num(DenseConstraint::lt(0, 1)),
            SortedConstraint::Num(DenseConstraint::lt(1, 2)),
            SortedConstraint::Bool(BoolConstraint::eq(
                &cql_bool::BoolTerm::Var(3),
                &cql_bool::BoolTerm::Gen(0),
            )),
        ];
        let dnf = TwoSorted::eliminate(&conj, 1).unwrap();
        assert_eq!(dnf.len(), 1);
        assert!(dnf[0].contains(&SortedConstraint::Num(DenseConstraint::lt(0, 2))));
        // ∃x3 of the boolean conjunct: Boole's lemma drops it.
        let dnf2 = TwoSorted::eliminate(&dnf[0], 3).unwrap();
        assert!(dnf2[0].iter().all(|c| matches!(c, SortedConstraint::Num(_))));
    }
}
