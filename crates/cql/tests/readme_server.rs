//! The README's `Runtime` + `QueryServer` quick-start, verbatim — if
//! this test stops compiling or passing, the README is lying.

use cql::prelude::*;
use std::sync::Arc;

#[test]
fn readme_query_server_quickstart() {
    // program, db, edge as in the MaterializedView quick-start.
    let program: Program<Dense> = Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 2]),
            vec![
                Literal::Pos(Atom::new("T", vec![0, 1])),
                Literal::Pos(Atom::new("E", vec![1, 2])),
            ],
        ),
    ]);
    let edge = |a: i64, b: i64| {
        GenTuple::new(vec![DenseConstraint::eq_const(0, a), DenseConstraint::eq_const(1, b)])
            .unwrap()
    };
    let mut db: Database<Dense> = Database::new();
    db.insert("E", GenRelation::from_conjunctions(2, vec![]));

    let runtime = Arc::new(Runtime::new(program, &db, FixpointOptions::default()).unwrap());
    runtime.insert("E", edge(0, 1)).unwrap(); // epoch 1
    runtime.insert("E", edge(1, 2)).unwrap(); // epoch 2

    let handler = {
        let runtime = Arc::clone(&runtime);
        move |_tenant: &str, (a, b): (i64, i64)| {
            let snap = runtime.pin(); // O(1), never blocks writers
            let hits = runtime
                .query(
                    &snap,
                    "T",
                    &[DenseConstraint::eq_const(0, a), DenseConstraint::eq_const(1, b)],
                )
                .unwrap();
            (snap.epoch(), !hits.is_empty())
        }
    };
    let server = QueryServer::start(
        ServerConfig::default(),            // workers = available cores
        Arc::new(TelemetryRegistry::new()), // per-tenant metrics
        handler,
    );
    match server.submit("tenant-a", (0, 2)) {
        Admission::Accepted(ticket) => {
            let (epoch, reachable) = ticket.wait();
            assert!(reachable && epoch >= 2);
        }
        Admission::Overloaded => unreachable!("bounded queue was empty"),
    }
    server.shutdown();
}
