//! The README's `MaterializedView` quick-start, verbatim — if this test
//! stops compiling or passing, the README is lying.

use cql::prelude::*;

#[test]
fn readme_materialized_view_quickstart() {
    // T = transitive closure of E, maintained incrementally.
    let program: Program<Dense> = Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 2]),
            vec![
                Literal::Pos(Atom::new("T", vec![0, 1])),
                Literal::Pos(Atom::new("E", vec![1, 2])),
            ],
        ),
    ]);
    let edge = |a: i64, b: i64| {
        GenTuple::new(vec![DenseConstraint::eq_const(0, a), DenseConstraint::eq_const(1, b)])
            .unwrap()
    };

    let mut db: Database<Dense> = Database::new();
    db.insert("E", GenRelation::from_conjunctions(2, vec![]));
    let mut view = MaterializedView::new(program, &db, FixpointOptions::default()).unwrap();

    view.insert("E", edge(0, 1)).unwrap();
    let stats = view.insert("E", edge(1, 2)).unwrap(); // per-update EXPLAIN row
    assert!(view.current().get("T").unwrap().satisfied_by(&[Rat::from(0), Rat::from(2)]));
    assert!(stats.delta_rounds > 0);

    view.retract("E", &edge(1, 2)).unwrap(); // over-delete + re-derive
    assert!(!view.current().get("T").unwrap().satisfied_by(&[Rat::from(0), Rat::from(2)]));
}
