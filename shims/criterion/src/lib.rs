//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the subset of criterion's API the workspace benches use —
//! `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`] and
//! [`Bencher::iter`] — with a simple median-of-samples timer instead of
//! criterion's statistical machinery. Output is one line per benchmark:
//! `group/id/param ... <median> (<samples> samples)`.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering, as in criterion.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10 }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.to_string(), 10, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { text: format!("{name}/{parameter}") }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting `sample_size` samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up call, then timed samples.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    println!("{label:<48} {median:>12.2?} ({} samples)", b.samples.len());
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
