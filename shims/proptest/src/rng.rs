//! Deterministic random stream for test-case generation.

/// A splitmix64 generator seeded from the test name, so every test gets
/// an independent, reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    #[must_use]
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next draw as 128 bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform draw from `[0, bound)` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, bound)` in 128 bits.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        if bound == 0 {
            return 0;
        }
        self.next_u128() % bound
    }

    /// A coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
