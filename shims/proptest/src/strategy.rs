//! Value-generation strategies (no shrinking).

use crate::rng::TestRng;
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test values. Object-safe so [`crate::prop_oneof!`] can
/// mix heterogeneous strategy types behind `dyn Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (shareable, clonable handle).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }

    /// Recursive strategies: `self` generates leaves, `recurse` builds one
    /// more level on top of the strategy for the level below. `depth`
    /// bounds the recursion; the size-tuning parameters of real proptest
    /// are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let rec = recurse(cur);
            // 2:1 bias toward recursion; the explicit depth bound keeps
            // generation finite.
            let rec = rec.boxed();
            cur = OneOf::new(vec![Box::new(base.clone()), Box::new(rec.clone()), Box::new(rec)])
                .boxed();
        }
        cur
    }
}

/// A clonable, type-erased strategy handle.
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

impl<V> BoxedStrategy<V> {
    /// Erase `strategy`.
    pub fn new(strategy: impl Strategy<Value = V> + 'static) -> BoxedStrategy<V> {
        BoxedStrategy(std::rc::Rc::new(strategy))
    }
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted binary choice between two strategies of the same value type
/// (the concrete-typed spine of [`crate::prop_oneof!`]).
pub struct Alt<A, B> {
    left: A,
    right: B,
    left_weight: u64,
    right_weight: u64,
}

impl<A, B> Alt<A, B> {
    /// Choose `left` with probability `lw / (lw + rw)`.
    #[must_use]
    pub fn new(left: A, right: B, lw: u64, rw: u64) -> Alt<A, B> {
        Alt { left, right, left_weight: lw, right_weight: rw }
    }
}

impl<A: Strategy, B: Strategy<Value = A::Value>> Strategy for Alt<A, B> {
    type Value = A::Value;

    fn generate(&self, rng: &mut TestRng) -> A::Value {
        if rng.below(self.left_weight + self.right_weight) < self.left_weight {
            self.left.generate(rng)
        } else {
            self.right.generate(rng)
        }
    }
}

/// Uniform choice between boxed strategies ([`Strategy::prop_recursive`]).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Build from the (non-empty) option list.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = rng.below_u128(span);
                (self.start as i128).wrapping_add(draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span =
                    ((*self.end() as i128).wrapping_sub(*self.start() as i128) as u128) + 1;
                let draw = rng.below_u128(span);
                (*self.start() as i128).wrapping_add(draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize);

/// Full-domain strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u32>()`, ...).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection-size specification: a fixed size or a (half-open or
/// inclusive) range, mirroring proptest's `Into<SizeRange>` arguments.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl SizeRange {
    fn draw(self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec` — vectors of generated elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy for `BTreeSet<S::Value>`; sizes are best-effort (duplicate
/// draws shrink the set, as in proptest).
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.draw(rng);
        let mut out = BTreeSet::new();
        // Bounded retry keeps generation total even for tiny domains.
        for _ in 0..(8 * n.max(1)) {
            if out.len() >= n {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        if out.is_empty() && self.size.lo > 0 {
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// `prop::collection::btree_set` — ordered sets of generated elements.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}
