//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! reimplements the (small) slice of proptest's API that the workspace's
//! property tests use: [`Strategy`](strategy::Strategy) with `prop_map`, range / tuple /
//! collection strategies, `any::<T>()`, the `proptest!`, `prop_oneof!`,
//! `prop_assert*!` and `prop_assume!` macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//! * cases are generated from a deterministic splitmix64 stream seeded by
//!   the test name, so runs are reproducible without a persistence file;
//! * there is no shrinking — failures report the already-small generated
//!   values (all workspace strategies draw from small domains);
//! * `prop_assert*!` panics (like `assert*!`) instead of returning a
//!   `TestCaseResult`.

pub mod rng;
pub mod strategy;

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Mirror of proptest's `prop` module namespace.
pub mod prop {
    /// Collection strategies (`vec`, `btree_set`).
    pub mod collection {
        pub use crate::strategy::{btree_set, vec, SizeRange};
    }
}

/// The glob-import surface used by the tests.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::ProptestConfig;
    // `#[macro_export]` puts the macros at the crate root; re-export them
    // so `use proptest::prelude::*` brings them in scope like upstream.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert with formatted context inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when a precondition does not hold.
///
/// The property body runs inside a closure returning
/// `Result<(), String>` (so `return Ok(())` works as in real proptest);
/// a failed assumption early-returns `Ok(())`, counting the case as
/// passed rather than rejected.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Combine heterogeneous strategies producing the same value type.
///
/// Expands to nested [`strategy::Alt`] combinators with weights chosen so
/// every arm is equally likely, keeping all types concrete (trait-object
/// strategies defeat inference in `impl Strategy<Value = ...>` returns).
#[macro_export]
macro_rules! prop_oneof {
    ($strat:expr $(,)?) => { $strat };
    ($strat:expr, $($rest:expr),+ $(,)?) => {
        $crate::strategy::Alt::new(
            $strat,
            $crate::prop_oneof!($($rest),+),
            1,
            $crate::__prop_count!($($rest),+),
        )
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_count {
    ($strat:expr) => { 1u64 };
    ($strat:expr, $($rest:expr),+) => { 1u64 + $crate::__prop_count!($($rest),+) };
}

/// Define property tests: each `fn name(pat in strategy, ...)` body runs
/// for `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)*
                // Run the body in a closure returning `Result` so property
                // bodies may `return Ok(())` (proptest's TestCaseResult).
                let __result = (move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(__e) = __result {
                    panic!("property {} failed: {}", stringify!($name), __e);
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}
