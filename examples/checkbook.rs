//! Figure 3 / Example 2.4: the balanced checkbook tableau, plus a
//! containment decision (Theorem 2.6).
//!
//! ```sh
//! cargo run --example checkbook [n_users]
//! ```

use cql_tableau::checkbook::{balanced_checkbook, checkbook_database};
use cql_tableau::containment::contained_linear;
use cql_tableau::tableau::{Entry, TableauBuilder};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30);

    let query = balanced_checkbook();
    println!("the Figure 3 tableau:\n{query}");

    let db = checkbook_database(n);
    let balanced = query.evaluate(&db);
    println!("balanced users out of {n}: {}", balanced.len());
    let mut ids: Vec<String> = balanced.iter().map(|t| t[0].to_string()).collect();
    ids.sort_by_key(|s| s.parse::<i64>().unwrap_or(0));
    println!("  {}", ids.join(", "));

    // Containment: the balanced query is contained in the "has accounts"
    // query (drop the equation), never vice versa.
    let loose = TableauBuilder::new(vec![Entry::Var("z")])
        .row("Expenses", vec![Entry::Var("z"), Entry::Blank, Entry::Blank, Entry::Blank])
        .row("Savings", vec![Entry::Var("z"), Entry::Blank])
        .row("Income", vec![Entry::Var("z"), Entry::Blank, Entry::Blank])
        .build();
    println!("\nTheorem 2.6 homomorphism containment:");
    println!("  balanced ⊆ has-accounts : {}", contained_linear(&query, &loose));
    println!("  has-accounts ⊆ balanced : {}", contained_linear(&loose, &query));
}
