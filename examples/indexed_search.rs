//! Generalized 1-dimensional indexing (§1.1(3)): project generalized
//! tuples to interval keys and answer range searches with a priority
//! search tree / interval tree instead of the naive scan, counting node
//! accesses.
//!
//! ```sh
//! cargo run --release --example indexed_search [n]
//! ```

use cql::prelude::*;
use cql_index::{Backend, GeneralizedIndex};

fn main() -> Result<(), CqlError> {
    let n: i64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2000);

    // A relation of n "segments": name pinned, x within an interval.
    let rel: GenRelation<Dense> = GenRelation::from_conjunctions(
        2,
        (0..n).map(|i| {
            vec![
                DenseConstraint::eq_const(0, i),
                DenseConstraint::ge_const(1, 3 * i),
                DenseConstraint::le_const(1, 3 * i + 2),
            ]
        }),
    );
    let (qlo, qhi) = (Rat::from(3 * n / 2), Rat::from(3 * n / 2 + 30));

    for backend in [Backend::NaiveScan, Backend::IntervalTree, Backend::PrioritySearchTree] {
        let mut idx = GeneralizedIndex::build(&rel, 1, backend)?;
        idx.reset_accesses();
        let hits = idx.search(&qlo, &qhi);
        println!(
            "{backend:?}: {} refined tuples for x ∈ [{qlo}, {qhi}], {} node accesses",
            hits.len(),
            idx.accesses()
        );
    }
    println!(
        "\nThe paper's point: with interval generalized keys, \
         1-d searching on a generalized attribute is 1.5-dimensional \
         searching — O(log N + K), not O(N)."
    );
    Ok(())
}
