//! Examples 5.4 / 5.5: deriving the adder circuit by bottom-up Datalog
//! evaluation with boolean equality constraints, then solving it
//! parametrically (Remark G).
//!
//! ```sh
//! cargo run --example adder_circuit [ripple_bits]
//! ```

use cql_bool::programs::{adder_paper_form, derive_adder, ripple_adder};
use cql_bool::BoolFunc;

fn main() {
    // --- One-bit adder from two half-adders (Example 5.4).
    let adder = derive_adder().expect("nonrecursive program");
    println!("derived Adder(x,y,c,s,d) relation:");
    for t in adder.tuples() {
        println!("  {t}");
    }
    let expected = adder_paper_form();
    assert_eq!(adder.tuples()[0].constraints(), &[expected]);
    println!("  == the paper's closed form (x⊕y⊕c⊕s) ∨ ((x∧y)⊕(x∧c)⊕(y∧c)⊕d) = 0 ✓");

    // --- Parametric solution (Example 5.5): treat X, Y, C as generators.
    let x = BoolFunc::gen(0);
    let y = BoolFunc::gen(1);
    let c = BoolFunc::gen(2);
    let s = x.xor(&y).xor(&c);
    let d = x.and(&y).xor(&x.and(&c)).xor(&y.and(&c));
    assert!(adder.satisfied_by(&[x, y, c, s.clone(), d.clone()]));
    println!("\nparametric solution over generators X, Y, C:");
    println!("  s = {s}");
    println!("  d = {d}");

    // --- Ripple-carry chain.
    let bits: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(3);
    let chained = ripple_adder(bits).expect("chaining");
    println!("\n{bits}-bit ripple adder derived by chaining + Boole's-lemma elimination:");
    println!("  {} generalized tuple(s), arity {}", chained.len(), chained.arity());
    // Spot-check: 1 + 1 (+0) per lane pattern 01 + 01 = 10 for 2+ bits.
    if bits >= 2 {
        let one = BoolFunc::one;
        let zero = BoolFunc::zero;
        let mut point = Vec::new();
        // x = 1, y = 1 (low bits set), carry-in 0.
        point.push(one());
        point.extend(std::iter::repeat_with(zero).take(bits - 1));
        point.push(one());
        point.extend(std::iter::repeat_with(zero).take(bits - 1));
        point.push(zero()); // carry in
                            // s = 2 (second bit set), rest zero, carry out 0.
        point.push(zero());
        point.push(one());
        point.extend(std::iter::repeat_with(zero).take(bits - 2));
        point.push(zero()); // carry out
        assert!(chained.satisfied_by(&point));
        println!("  1 + 1 = 2 verified against the derived constraint ✓");
    }
}
