//! Quickstart: the CQL framework end to end (Figure 1 of the paper).
//!
//! Builds a generalized database of dense-order constraints, runs a
//! relational calculus query bottom-up into closed form, feeds the output
//! back in as input, and runs a Datalog program over intervals.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cql::prelude::*;

fn main() -> Result<(), CqlError> {
    // --- A generalized relation: one tuple is a conjunction of
    // constraints and represents an infinite set of points.
    // S = {x | x < 2} ∪ {x | 5 ≤ x ≤ 7}.
    let s: GenRelation<Dense> = GenRelation::from_conjunctions(
        1,
        vec![
            vec![DenseConstraint::lt_const(0, 2)],
            vec![DenseConstraint::ge_const(0, 5), DenseConstraint::le_const(0, 7)],
        ],
    );
    let mut db = Database::new();
    db.insert("S", s);
    println!("input S:");
    for t in db.get("S").unwrap().tuples() {
        println!("  {t}");
    }

    // --- Relational calculus with negation: the complement is again a
    // generalized relation (closed form!).
    let complement = CalculusQuery::new(Formula::<Dense>::atom("S", vec![0]).not(), vec![0])?;
    let out = cql::core::calculus::evaluate(&complement, &db)?;
    println!("\n¬S(x) evaluates to:");
    for t in out.tuples() {
        println!("  {t}");
    }
    assert!(out.satisfied_by(&[Rat::from(3)]));
    assert!(!out.satisfied_by(&[Rat::from(6)]));

    // --- Closure: the output is a first-class relation; query it again.
    let mut db2 = Database::new();
    db2.insert("T", out);
    let narrowed = CalculusQuery::new(
        Formula::atom("T", vec![0]).and(Formula::constraint(DenseConstraint::lt_const(0, 4))),
        vec![0],
    )?;
    let out2 = cql::core::calculus::evaluate(&narrowed, &db2)?;
    println!("\n¬S(x) ∧ x < 4 evaluates to:");
    for t in out2.tuples() {
        println!("  {t}");
    }

    // --- Datalog over generalized tuples: interval-to-interval edges.
    let program: Program<Dense> = Program::new(vec![
        Rule::new(Atom::new("Reach", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("Reach", vec![0, 1]),
            vec![
                Literal::Pos(Atom::new("Reach", vec![0, 2])),
                Literal::Pos(Atom::new("E", vec![2, 1])),
            ],
        ),
    ]);
    let mut edb = Database::new();
    edb.insert(
        "E",
        GenRelation::from_conjunctions(
            2,
            vec![
                vec![
                    DenseConstraint::ge_const(0, 0),
                    DenseConstraint::le_const(0, 1),
                    DenseConstraint::ge_const(1, 2),
                    DenseConstraint::le_const(1, 3),
                ],
                vec![
                    DenseConstraint::ge_const(0, 2),
                    DenseConstraint::le_const(0, 3),
                    DenseConstraint::ge_const(1, 4),
                    DenseConstraint::le_const(1, 5),
                ],
            ],
        ),
    );
    let fixpoint = cql::core::datalog::seminaive(&program, &edb, &FixpointOptions::default())?;
    let reach = fixpoint.idb.get("Reach").unwrap();
    println!(
        "\nDatalog reachability fixpoint ({} tuples, {} rounds):",
        reach.len(),
        fixpoint.iterations
    );
    for t in reach.tuples() {
        println!("  {t}");
    }
    assert!(reach.satisfied_by(&[Rat::from(0), Rat::from(5)]));

    println!("\nclosed form + bottom-up + low data complexity ✓  (Figure 1)");
    Ok(())
}
