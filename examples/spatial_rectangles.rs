//! Example 1.1 / Figure 2: rectangle intersection three ways.
//!
//! Runs the paper's generalized-relation query against the naive pairwise
//! baseline and a sweep line, on a seeded random workload, and prints the
//! agreement and timings.
//!
//! ```sh
//! cargo run --release --example spatial_rectangles [n]
//! ```

use cql_geo::rectangles::{cql_intersections, naive_intersections, sweep_intersections};
use cql_geo::workload::random_rects;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(48);
    let rects = random_rects(n, 64, 16, 2026);
    println!("{n} random rectangles in a 64×64 space\n");

    let t0 = Instant::now();
    let cql = cql_intersections(&rects);
    let t_cql = t0.elapsed();

    let t0 = Instant::now();
    let naive = naive_intersections(&rects);
    let t_naive = t0.elapsed();

    let t0 = Instant::now();
    let sweep = sweep_intersections(&rects);
    let t_sweep = t0.elapsed();

    assert_eq!(cql, naive, "CQL vs naive disagree");
    assert_eq!(naive, sweep, "naive vs sweep disagree");

    println!("intersecting ordered pairs: {}", cql.len());
    println!("  CQL generalized-relation query : {t_cql:>12.3?}");
    println!("  naive pairwise baseline        : {t_naive:>12.3?}");
    println!("  sweep line                     : {t_sweep:>12.3?}");
    println!("\nfirst pairs: {:?}", &cql[..cql.len().min(8)]);
    println!(
        "\nThe declarative program is one line — \
         \"∃x,y (R(n1,x,y) ∧ R(n2,x,y))\" — and the same program works \
         for triangles (see cql-poly's tests)."
    );
}
