//! Datalog + dense order (§3): transitive closure over interval data,
//! evaluated by all four engines — symbolic naive, semi-naive, the §3.2
//! generalized-Herbrand (cell) evaluation, and the §3.3 parallel variant
//! — with derivation-tree statistics.
//!
//! ```sh
//! cargo run --release --example reachability [chain_length]
//! ```

use cql::prelude::*;
use std::time::Instant;

fn main() -> Result<(), CqlError> {
    let n: i64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);

    let program: Program<Dense> = Program::new(vec![
        Rule::new(Atom::new("T", vec![0, 1]), vec![Literal::Pos(Atom::new("E", vec![0, 1]))]),
        Rule::new(
            Atom::new("T", vec![0, 1]),
            vec![
                Literal::Pos(Atom::new("T", vec![0, 2])),
                Literal::Pos(Atom::new("E", vec![2, 1])),
            ],
        ),
    ]);
    let mut edb = Database::new();
    edb.insert(
        "E",
        GenRelation::from_conjunctions(
            2,
            (0..n).map(|i| {
                vec![DenseConstraint::eq_const(0, i), DenseConstraint::eq_const(1, i + 1)]
            }),
        ),
    );
    let opts = FixpointOptions::default();

    let t0 = Instant::now();
    let naive = datalog::naive(&program, &edb, &opts)?;
    let t_naive = t0.elapsed();

    let t0 = Instant::now();
    let semi = datalog::seminaive(&program, &edb, &opts)?;
    let t_semi = t0.elapsed();

    let t0 = Instant::now();
    let cell = datalog::cell_naive(&program, &edb, &opts)?;
    let t_cell = t0.elapsed();

    let t0 = Instant::now();
    let par = datalog::cell_parallel(&program, &edb, &opts, 4)?;
    let t_par = t0.elapsed();

    println!("transitive closure of a {n}-edge chain:");
    println!(
        "  naive symbolic   : {:>5} tuples, {:>3} rounds, {t_naive:>10.3?}",
        naive.idb.get("T").unwrap().len(),
        naive.iterations
    );
    println!(
        "  semi-naive       : {:>5} tuples, {:>3} rounds, {t_semi:>10.3?}",
        semi.idb.get("T").unwrap().len(),
        semi.iterations
    );
    println!(
        "  cell (Herbrand)  : {:>5} tuples, {:>3} rounds, {t_cell:>10.3?}",
        cell.idb.get("T").unwrap().len(),
        cell.iterations
    );
    println!(
        "  cell (4 threads) : {:>5} tuples, {:>3} rounds, {t_par:>10.3?}",
        par.idb.get("T").unwrap().len(),
        par.iterations
    );
    println!(
        "\nderivation trees (§3.3): max depth {}, max fringe {}, {} atoms",
        cell.stats.max_depth, cell.stats.max_fringe, cell.stats.atoms_derived
    );

    // All engines agree on sample points.
    for a in 0..=n {
        for b in 0..=n {
            let p = [Rat::from(a), Rat::from(b)];
            let expected = a < b;
            for r in [&naive.idb, &semi.idb, &cell.idb, &par.idb] {
                assert_eq!(r.get("T").unwrap().satisfied_by(&p), expected);
            }
        }
    }
    println!("all four engines agree ✓");
    Ok(())
}
