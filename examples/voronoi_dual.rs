//! Example 2.2: the Voronoi dual by per-pair CQL sentences over the
//! polynomial theory, cross-checked against the exact rational baseline.
//!
//! ```sh
//! cargo run --release --example voronoi_dual [n]
//! ```

use cql_geo::voronoi::{baseline_voronoi_dual, cql_voronoi_dual};
use cql_geo::workload::random_points;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let points = random_points(n, 24, 2026);
    println!("{n} random sites:");
    for (i, p) in points.iter().enumerate() {
        println!("  {i}: ({}, {})", p.x, p.y);
    }

    let t0 = Instant::now();
    let cql = cql_voronoi_dual(&points);
    let t_cql = t0.elapsed();
    let t0 = Instant::now();
    let base = baseline_voronoi_dual(&points);
    let t_base = t0.elapsed();

    assert_eq!(cql, base, "CQL and baseline disagree");
    println!("\nVoronoi-dual (Delaunay) edges: {:?}", cql);
    println!("  CQL sentences : {t_cql:.3?}");
    println!("  exact baseline: {t_base:.3?}");
    println!(
        "\nEach edge is the sentence: every point of segment uv is closer \
         to u or v than to any other site (quadratic constraints, decided \
         by virtual substitution + Sturm sequences)."
    );
}
