//! Example 5.8, exactly as the paper writes it: the recursive parity
//! program in the *combined* dense-order × boolean framework (§5.2's
//! closing remark) — rational chain positions, boolean parametric bits.
//!
//! ```sh
//! cargo run --release --example two_sorted_parity [n]
//! ```

use cql::combined::{example_5_8_parity, SortedValue};
use cql_bool::programs::parity_func;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let parity = example_5_8_parity(n).expect("fixpoint");
    println!("Paritybit relation derived for {n} parametric bits:");
    for t in parity.tuples() {
        println!("  {t}");
    }
    let expected = parity_func(n);
    assert!(parity.satisfied_by(&[SortedValue::Bool(expected.clone())]));
    assert!(!parity.satisfied_by(&[SortedValue::Bool(expected.not())]));
    println!("\nx = Y₀ ⊕ … ⊕ Y_{} verified parametrically (Remark G) ✓", n - 1);
}
